open Waltz_linalg
open Waltz_qudit
open Waltz_noise
open Waltz_sim
open Waltz_runtime
module Telemetry = Waltz_telemetry.Telemetry
module Recorder = Waltz_telemetry.Recorder
module Clock = Waltz_telemetry.Clock
module Sanitize = Waltz_sanitizer.Sanitize

type config = { model : Noise.model; trajectories : int; base_seed : int }

let default_config = { model = Noise.default; trajectories = 50; base_seed = 2023 }

type result = { mean_fidelity : float; sem : float; trajectories : int }

let max_devices ~device_dim = if device_dim = 4 then 11 else 22

(* Hot-path telemetry handles, interned once at module init so per-op and
   per-trajectory instrumentation never hashes a metric name or takes the
   telemetry state mutex (see Metrics.cell / Metrics.series). The
   per-domain trajectory counter name depends on the recording domain, so
   its cell is interned lazily per domain. *)
let trajectories_cell = Telemetry.Metrics.cell "executor.trajectories"
let blocks_cell = Telemetry.Metrics.cell "executor.batch.blocks"
let lane_windows_cell = Telemetry.Metrics.cell "executor.batch.lane_windows"
let mask_divergence_cell = Telemetry.Metrics.cell "executor.batch.mask_divergence"
let plan_hit_cell = Telemetry.Metrics.cell "executor.plan_cache.hit"
let plan_miss_cell = Telemetry.Metrics.cell "executor.plan_cache.miss"
let lift_hit_cell = Telemetry.Metrics.cell "executor.lift_gate.hit"
let lift_miss_cell = Telemetry.Metrics.cell "executor.lift_gate.miss"
let lift_collision_cell = Telemetry.Metrics.cell "executor.lift_table.collision"
let trajectory_us_series = Telemetry.Metrics.series "executor.trajectory_us"
let block_us_series = Telemetry.Metrics.series "executor.block_us"

let domain_traj_cell : Telemetry.Metrics.cell Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Telemetry.Metrics.cell
        (Printf.sprintf "executor.domain.%d.trajectories" (Domain.self () :> int)))

(* An idle window resolved at plan time: the damping lambdas and the
   no-jump Kraus scales are pure functions of the window length, so both
   are computed once per plan and only read by worker domains. *)
type damp_spec = { dwire : int; lambdas : float array; scales : float array }

(* A compiled op, prepared for fast repeated execution. *)
type plan_op = {
  devices : int list;  (** state wires the lifted gate acts on, in order *)
  lifted : Mat.t;  (** unitary over those device wires *)
  kernel : Kernel.t;  (** plan-time classified apply path for [lifted] *)
  dispatch_cell : Telemetry.Metrics.cell;
      (** preallocated telemetry counter handle for the kernel class *)
  error_p : float;
  error_parts : (int * Physical.noise_role) list;  (** device, role *)
  error_dims : int list;  (** radix of each error part's Pauli draw *)
  pre_damp : damp_spec list;  (** idle windows closing when this op starts *)
}

(* Population outside the computational subspace defined by a placement map:
   a device's allowed levels depend on how many qubits it holds. The tables
   and strides depend only on the compiled program, so they are resolved
   once per plan and shared by every trajectory. *)
type leakage_tables = {
  l_allowed : bool array array;
  l_strides : int array;
  l_dim : int;  (** device_dim *)
  l_ok : bool array;
      (** per-index membership, [l_ok.(idx)] = every device digit allowed —
          folds the per-device digit chain into one table lookup at plan
          time so the per-trajectory sweep is branch + multiply only *)
}

(* The per-trajectory schedule: idle-window bookkeeping is identical for
   every trajectory, so start times, damping lambdas and Pauli radices are
   all resolved once per plan and only read from the worker domains. *)
type plan = {
  plan_dims : int array;  (** register shape the kernels were compiled for *)
  plan_ops : plan_op list;
  final_damp : damp_spec list;  (** windows closing at the end *)
  plan_allowed : bool array array;  (** initial-map support tables *)
  plan_support : int array;
      (** ascending amplitude indices inside the initial-map support — the
          flattened form of [plan_allowed], fed to the Haar refill so no
          trajectory re-runs the per-index support test *)
  plan_leak : leakage_tables;  (** final-map leakage tables *)
  plan_dispatch : (Telemetry.Metrics.cell * int) array;
      (** per kernel class: (dispatch counter cell, ops of that class). The
          dispatch tally per trajectory or block is a static function of
          the plan, so the instrumented wrappers flush one increment per
          class instead of one per op application. *)
}

(* Devices in order of first appearance among the targets. Reversed-cons
   accumulation; the [List.mem] scan is over at most three devices. *)
let unique_devices targets =
  List.rev
    (List.fold_left
       (fun acc (d, _) -> if List.mem d acc then acc else d :: acc)
       [] targets)

let lift_gate_uncached ~device_dim (op : Physical.op) =
  let devices = unique_devices op.Physical.targets in
  let wires_per_device = if device_dim = 4 then 2 else 1 in
  let total_wires = wires_per_device * List.length devices in
  let wire_of (d, s) =
    let rec index i = function
      | [] -> assert false
      | d' :: rest -> if d' = d then i else index (i + 1) rest
    in
    let base = wires_per_device * index 0 devices in
    if device_dim = 4 then base + s else base
  in
  let lifted =
    Embed.on_qubits ~n:total_wires
      ~targets:(List.map wire_of op.Physical.targets)
      op.Physical.gate
  in
  (devices, lifted)

(* The lifted unitary depends on the gate and the *pattern* of targets —
   which of the op's devices each (device, slot) wire belongs to — not on
   absolute device ids, so ops that repeat a gate on different devices share
   one Kronecker lift. Keyed on the op's label plus dimensions rather than
   the gate's full float arrays, so lookups never hash 256 floats; ops that
   share a label but carry different matrices (the two ENC encode directions,
   parameterized rotations) land in one bucket and are told apart by matrix
   equality, counted as [executor.lift_table.collision]. The mutex makes the
   table safe for concurrent planners. *)
let lift_table : (int * (int * int) list * string * int, (Mat.t * Mat.t) list ref)
    Hashtbl.t =
  Hashtbl.create 64

let lift_mutex = Mutex.create ()

let lift_gate ~device_dim (op : Physical.op) =
  let devices = unique_devices op.Physical.targets in
  let index_of d =
    let rec go i = function
      | [] -> assert false
      | d' :: rest -> if d' = d then i else go (i + 1) rest
    in
    go 0 devices
  in
  let pattern = List.map (fun (d, s) -> (index_of d, s)) op.Physical.targets in
  let gate = op.Physical.gate in
  let key = (device_dim, pattern, op.Physical.label, gate.Mat.rows) in
  Mutex.lock lift_mutex;
  Sanitize.Lock.acquire "executor.lift_mutex";
  let bucket =
    match Hashtbl.find_opt lift_table key with
    | Some b -> b
    | None ->
      if Hashtbl.length lift_table > 4096 then Hashtbl.reset lift_table;
      let b = ref [] in
      Hashtbl.add lift_table key b;
      b
  in
  let lifted, hit, collision =
    match List.find_opt (fun (g, _) -> g = gate) !bucket with
    | Some (_, lifted) ->
      Sanitize.Shared.read "executor.lift_table";
      (lifted, true, false)
    | None ->
      let _, lifted = lift_gate_uncached ~device_dim op in
      let collision = !bucket <> [] in
      Sanitize.Shared.write "executor.lift_table";
      bucket := (gate, lifted) :: !bucket;
      (lifted, false, collision)
  in
  Sanitize.Lock.release "executor.lift_mutex";
  Mutex.unlock lift_mutex;
  Telemetry.Metrics.cell_incr (if hit then lift_hit_cell else lift_miss_cell);
  if collision then Telemetry.Metrics.cell_incr lift_collision_cell;
  (devices, lifted)

(* Allowed levels per device under a placement map: a device's computational
   subspace depends on how many qubits it holds and in which slots. *)
let allowed_of_map ~device_dim ~device_count map =
  let allowed = Array.make device_count [ 0 ] in
  if device_dim = 2 then Array.iter (fun (d, _) -> allowed.(d) <- [ 0; 1 ]) map
  else begin
    let slots = Array.make device_count [] in
    Array.iter (fun (d, s) -> slots.(d) <- s :: slots.(d)) map;
    Array.iteri
      (fun d occupied ->
        allowed.(d) <-
          (match List.sort_uniq compare occupied with
          | [] -> [ 0 ]
          | [ 1 ] -> [ 0; 1 ]
          | [ 0 ] -> [ 0; 2 ]
          | _ -> [ 0; 1; 2; 3 ]))
      slots
  end;
  allowed

(* Per-device bool lookup tables (level -> allowed), replacing List.mem in
   the O(dim_total · devices) scans. *)
let allowed_table ~device_dim allowed =
  Array.map (fun levels -> Array.init device_dim (fun l -> List.mem l levels)) allowed

(* Flatten wire-major level tables into the ascending list of amplitude
   indices whose every wire digit is allowed — one O(n * wires) sweep at
   plan time replacing the same sweep per trajectory. *)
let support_indices ~dims allowed =
  let nw = Array.length dims in
  let strides = Array.make nw 1 in
  for w = nw - 2 downto 0 do
    strides.(w) <- strides.(w + 1) * dims.(w + 1)
  done;
  let n = Array.fold_left ( * ) 1 dims in
  let out = ref [] in
  for idx = n - 1 downto 0 do
    let ok = ref true in
    for w = 0 to nw - 1 do
      if not allowed.(w).(idx / strides.(w) mod dims.(w)) then ok := false
    done;
    if !ok then out := idx :: !out
  done;
  Array.of_list !out

let initial_allowed (compiled : Physical.t) =
  allowed_of_map ~device_dim:compiled.Physical.device_dim
    ~device_count:compiled.Physical.device_count compiled.Physical.initial_map

let leakage_tables_of ~map (compiled : Physical.t) =
  let device_dim = compiled.Physical.device_dim in
  let device_count = compiled.Physical.device_count in
  let strides = Array.make device_count 1 in
  for d = device_count - 2 downto 0 do
    strides.(d) <- strides.(d + 1) * device_dim
  done;
  let l_allowed =
    allowed_table ~device_dim (allowed_of_map ~device_dim ~device_count map)
  in
  let n = if device_count = 0 then 1 else strides.(0) * device_dim in
  let l_ok =
    Array.init n (fun idx ->
        let ok = ref true in
        for d = 0 to device_count - 1 do
          if not l_allowed.(d).(idx / strides.(d) mod device_dim) then ok := false
        done;
        !ok)
  in
  { l_allowed; l_strides = strides; l_dim = device_dim; l_ok }

(* Payload-byte accounting shared with the static resource certificates
   (Waltz_analysis.Resource): the executor reports what it actually
   allocates through these formulas, and the certificate computes its
   bounds through the same ones, so "certified >= observed" can never be
   broken by the two sides counting different things. All figures are
   array payload bytes (8 per float or int word), headers excluded. *)
let workspace_bytes ~dims =
  let n = Array.fold_left ( * ) 1 dims in
  3 * 2 * 8 * n

let block_workspace_bytes ~dims ~cap =
  let n = Array.fold_left ( * ) 1 dims in
  (3 * 2 * 8 * n * cap) + (3 * 8 * cap)

let plan_op_bytes ~lifted ~kernel =
  (2 * 8 * lifted.Mat.rows * lifted.Mat.cols) + Kernel.footprint_bytes kernel

let plan_uncached ~model (compiled : Physical.t) =
  Telemetry.Span.with_ ~name:"executor/plan" @@ fun () ->
  let device_dim = compiled.Physical.device_dim in
  let plan_dims = Array.make compiled.Physical.device_count device_dim in
  let schedule = Physical.schedule compiled in
  let total_duration = Physical.total_duration compiled in
  let lambdas_of = Noise.damping_cache model ~d:device_dim in
  let last_busy = Array.make compiled.Physical.device_count 0. in
  let window device until =
    let dt = until -. last_busy.(device) in
    if dt > 1e-9 then begin
      let lambdas = lambdas_of dt in
      Some { dwire = device; lambdas; scales = State.damp_scales lambdas }
    end
    else None
  in
  let plan_ops =
    List.map
      (fun ((op : Physical.op), start) ->
        let devices, lifted = lift_gate ~device_dim op in
        let kernel = Kernel.compile ~dims:plan_dims ~targets:devices lifted in
        let cls = Kernel.class_name kernel in
        Telemetry.Metrics.incr ("executor.kernel_class." ^ cls);
        let err = 1. -. op.Physical.fidelity in
        let err = if op.Physical.touches_ww then err *. model.Noise.ww_error_scale else err in
        let error_parts =
          List.filter_map
            (fun (p : Physical.device_part) ->
              match p.Physical.noise with
              | Physical.Quiet -> None
              | role -> Some (p.Physical.device, role))
            op.Physical.parts
        in
        let part_devices =
          List.map (fun (p : Physical.device_part) -> p.Physical.device) op.Physical.parts
        in
        let pre_damp = List.filter_map (fun d -> window d start) part_devices in
        List.iter (fun d -> last_busy.(d) <- start +. op.Physical.duration_ns) part_devices;
        { devices;
          lifted;
          kernel;
          dispatch_cell = Telemetry.Metrics.cell ("executor.kernel_dispatch." ^ cls);
          error_p = Float.max 0. err;
          error_parts;
          error_dims =
            List.map (fun (_, role) -> match role with Physical.P4 -> 4 | _ -> 2) error_parts;
          pre_damp })
      schedule
  in
  let final_damp =
    List.filter_map
      (fun d -> window d total_duration)
      (List.init compiled.Physical.device_count Fun.id)
  in
  (* Plan-resident payload bytes, through the same formula the resource
     certificates use — fires once per plan build (cache misses only), so a
     single certified run observes exactly one plan's worth. *)
  Telemetry.Metrics.incr
    ~by:
      (List.fold_left
         (fun acc p -> acc + plan_op_bytes ~lifted:p.lifted ~kernel:p.kernel)
         0 plan_ops)
    "executor.plan.bytes";
  (* Warm the shared Pauli tables once at plan time (they are mutex-guarded
     globals, so pre-filling here keeps every later trajectory, on every
     domain, contention-free without a per-simulate warm pass). *)
  List.iter (fun d -> ignore (Noise.pauli_set ~d)) [ 2; device_dim ];
  let plan_allowed = allowed_table ~device_dim (initial_allowed compiled) in
  let plan_dispatch =
    (* Cells are interned per class name, so physical equality groups ops
       by kernel class. *)
    let acc = ref [] in
    List.iter
      (fun op ->
        match List.assq_opt op.dispatch_cell !acc with
        | Some n -> acc := (op.dispatch_cell, n + 1) :: List.remove_assq op.dispatch_cell !acc
        | None -> acc := (op.dispatch_cell, 1) :: !acc)
      plan_ops;
    Array.of_list (List.rev !acc)
  in
  { plan_dims;
    plan_ops;
    final_damp;
    plan_allowed;
    plan_support = support_indices ~dims:plan_dims plan_allowed;
    plan_leak = leakage_tables_of ~map:compiled.Physical.final_map compiled;
    plan_dispatch }

(* Cross-call plan cache. Repeated [simulate] calls on one compiled program
   (benchmark reps, parameter sweeps over trajectories/seeds) replan from
   scratch without it. Keyed by physical identity of the compiled program —
   a [Physical.t] is immutable once built, and recompiling yields a fresh
   value, so [==] is exactly "same compilation" — plus structural equality
   of the noise model, which feeds the damping tables and error scaling.
   Bounded MRU list: hits move to the front, inserts evict the tail. *)
let plan_cache : (Physical.t * Noise.model * plan) list ref = ref []
let plan_cache_mutex = Mutex.create ()
let plan_cache_capacity = 8

let plan_cache_find ~model compiled =
  List.find_opt (fun (c, m, _) -> c == compiled && m = model) !plan_cache

(* Domain-local fast path over the shared cache: repeated simulate calls on
   one (compiled, model) — benchmark reps, trajectory sweeps — skip the
   mutex and the MRU walk entirely. Holding a plan here is safe because
   plans are immutable and never invalidated, only evicted from the shared
   MRU list. *)
let plan_memo : (Physical.t * Noise.model * plan) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let plan_shared ~model (compiled : Physical.t) =
  Mutex.lock plan_cache_mutex;
  Sanitize.Lock.acquire "executor.plan_cache_mutex";
  let cached = plan_cache_find ~model compiled in
  let p =
    match cached with
    | Some ((_, _, p) as entry) ->
      Sanitize.Shared.write "executor.plan_cache";
      plan_cache := entry :: List.filter (fun e -> not (e == entry)) !plan_cache;
      Sanitize.Lock.release "executor.plan_cache_mutex";
      Mutex.unlock plan_cache_mutex;
      Telemetry.Metrics.cell_incr plan_hit_cell;
      p
    | None ->
      Sanitize.Lock.release "executor.plan_cache_mutex";
      Mutex.unlock plan_cache_mutex;
      Telemetry.Metrics.cell_incr plan_miss_cell;
      let p = plan_uncached ~model compiled in
      Mutex.lock plan_cache_mutex;
      Sanitize.Lock.acquire "executor.plan_cache_mutex";
      (* Re-check before inserting: planning runs outside the lock, so a
         concurrent caller may have planned and inserted the same
         (compiled, model) in the meantime. Without this, both planners
         insert and the duplicate silently halves the effective capacity;
         adopting the winner also keeps [run_ideal]'s [==]-keyed reuse
         exact. *)
      let p =
        match plan_cache_find ~model compiled with
        | Some (_, _, p') -> p'
        | None ->
          Sanitize.Shared.write "executor.plan_cache";
          plan_cache :=
            (compiled, model, p)
            :: (if List.length !plan_cache >= plan_cache_capacity then
                  List.filteri (fun i _ -> i < plan_cache_capacity - 1) !plan_cache
                else !plan_cache);
          p
      in
      Sanitize.Lock.release "executor.plan_cache_mutex";
      Mutex.unlock plan_cache_mutex;
      p
  in
  p

let plan ~model (compiled : Physical.t) =
  let memo = Domain.DLS.get plan_memo in
  match !memo with
  | Some (c, m, p) when c == compiled && m = model ->
    Telemetry.Metrics.cell_incr plan_hit_cell;
    p
  | _ ->
    let p = plan_shared ~model compiled in
    memo := Some (compiled, model, p);
    p

(* The whole point of the kernel stage: per-op, per-trajectory cost is one
   dispatch on the precompiled class, no re-validation or re-classification.
   Dispatch counters are flushed per trajectory/block from [plan_dispatch],
   not here, so the apply loop carries no instrumentation at all. *)
let apply_plan_op state p = Kernel.apply p.kernel (State.amplitudes state)

let embed_error ~device_dim role pauli =
  match (role, device_dim) with
  | Physical.P4, 4 -> pauli
  | Physical.P2 _, 2 -> pauli
  | Physical.P2 0, 4 -> Mat.kron pauli Gates.id2
  | Physical.P2 _, 4 -> Mat.kron Gates.id2 pauli
  | Physical.P4, _ -> invalid_arg "Executor: P4 errors need 4-level devices"
  | _ -> invalid_arg "Executor: inconsistent error role"

let inject_errors rng ~device_dim state p =
  if p.error_parts = [] then 0
  else begin
    match Noise.draw_error rng ~dims:p.error_dims ~p:p.error_p with
    | None -> 0
    | Some factors ->
      List.iter2
        (fun (device, role) pauli ->
          State.apply state ~targets:[ device ] (embed_error ~device_dim role pauli))
        p.error_parts factors;
      1
  end

let damp_specs state rng specs =
  List.iter
    (fun { dwire; lambdas; scales } ->
      State.damp_with state rng ~wire:dwire ~lambdas ~scales)
    specs

let run_noisy rng ~device_dim plan state =
  let draws = ref 0 in
  List.iter
    (fun p ->
      damp_specs state rng p.pre_damp;
      apply_plan_op state p;
      draws := !draws + inject_errors rng ~device_dim state p)
    plan.plan_ops;
  damp_specs state rng plan.final_damp;
  !draws

let run_ideal (compiled : Physical.t) state =
  let plan = plan ~model:Noise.default compiled in
  let out = State.copy state in
  List.iter (fun p -> apply_plan_op out p) plan.plan_ops;
  Array.iter (fun (c, n) -> Telemetry.Metrics.cell_incr ~by:n c) plan.plan_dispatch;
  out

let leakage_with tables state =
  let ok = tables.l_ok in
  let amps = State.amplitudes state in
  let re = amps.Waltz_linalg.Vec.re and im = amps.Waltz_linalg.Vec.im in
  let inside = ref 0. in
  for idx = 0 to Waltz_linalg.Vec.dim amps - 1 do
    if ok.(idx) then inside := !inside +. (re.(idx) *. re.(idx)) +. (im.(idx) *. im.(idx))
  done;
  1. -. !inside

(* Per-lane leakage, the SoA counterpart of [leakage_with]: the support
   test per index is shared across lanes, and each lane accumulates its
   inside-subspace weight in the same ascending-index order as the scalar
   sweep — bit-identical per lane. *)
let leakage_block_with tables blk ~inside out =
  let ok = tables.l_ok in
  let cap = State_block.capacity blk and live = State_block.live blk in
  let re = State_block.re blk and im = State_block.im blk in
  Array.fill inside 0 live 0.;
  for idx = 0 to State_block.dim_total blk - 1 do
    if ok.(idx) then begin
      let p = idx * cap in
      for k = 0 to live - 1 do
        inside.(k) <-
          inside.(k) +. (re.(p + k) *. re.(p + k)) +. (im.(p + k) *. im.(p + k))
      done
    end
  done;
  for k = 0 to live - 1 do
    out.(k) <- 1. -. inside.(k)
  done

type detailed = { summary : result; mean_leakage : float; mean_error_draws : float }

(* Per-domain trajectory workspace: the input/ideal/noisy state triple is
   reused across every trajectory a domain runs, so the steady-state loop
   allocates no state vectors at all. One slot per domain suffices — a
   simulate call has a single register shape — keyed by the full dims array
   (dims [|2;2|] and [|4|] share a total dimension but not a shape). *)
type workspace = {
  wdims : int array;
  input : State.t;
  ideal : State.t;
  noisy : State.t;
  wowner : Sanitize.Arena.token;  (* sanitizer ownership witness *)
}

let workspace_key : workspace option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let workspace_for dims =
  let slot = Domain.DLS.get workspace_key in
  match !slot with
  | Some ws when ws.wdims = dims ->
    Sanitize.Arena.touch ws.wowner;
    ws
  | _ ->
    let ws =
      { wdims = Array.copy dims;
        input = State.create ~dims;
        ideal = State.create ~dims;
        noisy = State.create ~dims;
        wowner = Sanitize.Arena.create "executor.workspace" }
    in
    Telemetry.Metrics.incr ~by:(workspace_bytes ~dims) "executor.workspace.bytes";
    slot := Some ws;
    ws

(* Per-domain batched workspace: the input/ideal/noisy block triple plus
   the per-lane reduction buffers, reused across every block a domain runs
   (one register shape and one batch width per simulate call). The arena
   token makes a block smuggled across a pool job boundary an OWN01
   sanitizer finding, exactly like the scalar workspace. *)
type block_workspace = {
  bdims : int array;
  bcap : int;
  binput : State_block.t;
  bideal : State_block.t;
  bnoisy : State_block.t;
  bover : float array;  (* per-lane |⟨ideal|noisy⟩|² *)
  bleak : float array;  (* per-lane leakage *)
  binside : float array;  (* leakage accumulator *)
  bowner : Sanitize.Arena.token;  (* sanitizer ownership witness *)
}

let block_workspace_key : block_workspace option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let block_workspace_for dims ~cap =
  let slot = Domain.DLS.get block_workspace_key in
  match !slot with
  | Some ws when ws.bdims = dims && ws.bcap = cap ->
    Sanitize.Arena.touch ws.bowner;
    ws
  | _ ->
    let ws =
      { bdims = Array.copy dims;
        bcap = cap;
        binput = State_block.create ~dims ~cap;
        bideal = State_block.create ~dims ~cap;
        bnoisy = State_block.create ~dims ~cap;
        bover = Array.make cap 0.;
        bleak = Array.make cap 0.;
        binside = Array.make cap 0.;
        bowner = Sanitize.Arena.create "executor.block_workspace" }
    in
    Telemetry.Metrics.incr ~by:(block_workspace_bytes ~dims ~cap)
      "executor.workspace.block_bytes";
    slot := Some ws;
    ws

(* Default lockstep batch width: the [--batch] / [WALTZ_BATCH] knob, else 8
   — wide enough to amortize index arithmetic over the lanes, small enough
   that a block of three state triples stays cache-resident for the fig9
   register sizes. Results are bit-identical at every width. The env read
   is memoized — the environment is fixed for the process lifetime, and the
   getenv scan otherwise shows up in short simulate calls. A racing first
   call recomputes the same value, so the bare Atomic is safe. *)
let default_batch_memo = Atomic.make 0

let default_batch () =
  match Atomic.get default_batch_memo with
  | 0 ->
    let b =
      match Sys.getenv_opt "WALTZ_BATCH" with
      | Some s ->
        (match int_of_string_opt (String.trim s) with
        | Some b when b >= 1 -> min b 1024
        | _ -> 8)
      | None -> 8
    in
    Atomic.set default_batch_memo b;
    b
  | b -> b

let apply_plan_op_block blk p = State_block.apply_kernel blk p.kernel

let simulate_detailed_body ~config ?domains ?batch (compiled : Physical.t) =
  let device_dim = compiled.Physical.device_dim in
  if compiled.Physical.device_count > max_devices ~device_dim then
    invalid_arg
      (Printf.sprintf "Executor.simulate: %d devices exceeds the %d-device memory guard"
         compiled.Physical.device_count (max_devices ~device_dim));
  let model = config.model in
  let plan = plan ~model compiled in
  (* The modeled schedule duration this run executes — the certificate
     checker's duration oracle (the COST makespan interval must contain
     it). A gauge, so it reflects the last simulate in the readback
     window. *)
  if Telemetry.metrics_enabled () then
    Telemetry.Metrics.set_gauge "executor.schedule_ns"
      (Physical.total_duration compiled);
  let dims = plan.plan_dims in
  let support = plan.plan_support in
  let leak_tables = plan.plan_leak in
  let run_trajectory_raw k =
    (* Split-stream seeding: trajectory k's stream depends only on k, so the
       result is bit-identical at every domain count. *)
    let rng = Rng.make ~seed:(config.base_seed + (7919 * k)) in
    let ws = workspace_for dims in
    State.fill_random_on ws.input rng ~support;
    State.assign ~dst:ws.ideal ~src:ws.input;
    List.iter (fun p -> apply_plan_op ws.ideal p) plan.plan_ops;
    State.assign ~dst:ws.noisy ~src:ws.input;
    let draws = run_noisy rng ~device_dim plan ws.noisy in
    let leak = leakage_with leak_tables ws.noisy in
    (State.overlap2 ws.ideal ws.noisy, leak, draws)
  in
  (* Telemetry does not touch the trajectory's RNG stream or the reduction
     order, so the statistics are bit-identical with it on or off. *)
  let flush_trajectory_metrics dur =
    Telemetry.Metrics.series_observe trajectory_us_series dur;
    Telemetry.Metrics.cell_add trajectories_cell 1;
    Telemetry.Metrics.cell_add (Domain.DLS.get domain_traj_cell) 1;
    (* Each plan op was dispatched twice: the ideal pass and the noisy
       pass. *)
    Array.iter (fun (c, n) -> Telemetry.Metrics.cell_add c (2 * n)) plan.plan_dispatch
  in
  let run_trajectory k =
    if not (Telemetry.active ()) then run_trajectory_raw k
    else if not (Telemetry.enabled ()) then begin
      (* Always-on plane (metrics and/or armed flight recorder, no span
         collection): hand-inlined so the per-trajectory cost is two
         unboxed clock reads, the ring stores and the counter flush — no
         closure, tuple or boxed-float allocation on the way. *)
      let start_us = Clock.now_us () in
      Recorder.record_begin_at "trajectory" start_us;
      match run_trajectory_raw k with
      | r ->
        let end_us = Clock.now_us () in
        Recorder.record_end_at "trajectory" end_us;
        if Telemetry.metrics_enabled () then
          flush_trajectory_metrics (end_us -. start_us);
        r
      | exception exn ->
        let bt = Printexc.get_raw_backtrace () in
        Recorder.record_end_at "trajectory" (Clock.now_us ());
        Printexc.raise_with_backtrace exn bt
    end
    else begin
      let r, dur =
        Telemetry.Span.with_timed ~name:"trajectory" (fun () -> run_trajectory_raw k)
      in
      if Telemetry.metrics_enabled () then flush_trajectory_metrics dur;
      r
    end
  in
  (* One block of [batch] trajectories in lockstep over the SoA planes.
     Lane k of block j is trajectory j*batch + k, with its own split-stream
     RNG, so the per-lane draw order (input gaussians, per-window jump
     choices, per-op error draws) is exactly the scalar trajectory's — the
     flattened samples are bit-identical to the scalar engine at every
     batch width and domain count. Returns (per-lane samples, lanes that
     diverged from lockstep, per-lane stochastic windows). *)
  let run_block_raw j ~batch =
    let b0 = j * batch in
    let live = min batch (config.trajectories - b0) in
    let ws = block_workspace_for dims ~cap:batch in
    State_block.set_live ws.binput live;
    State_block.set_live ws.bideal live;
    State_block.set_live ws.bnoisy live;
    let rngs =
      Array.init live (fun i -> Rng.make ~seed:(config.base_seed + (7919 * (b0 + i))))
    in
    State_block.fill_random_on ws.binput rngs ~support;
    State_block.assign ~dst:ws.bideal ~src:ws.binput;
    List.iter (fun p -> apply_plan_op_block ws.bideal p) plan.plan_ops;
    State_block.assign ~dst:ws.bnoisy ~src:ws.binput;
    let draws = Array.make live 0 in
    let windows = ref 0 and diverged = ref 0 in
    let damp_block specs =
      List.iter
        (fun { dwire; lambdas; scales } ->
          windows := !windows + live;
          diverged :=
            !diverged + State_block.damp_with ws.bnoisy rngs ~wire:dwire ~lambdas ~scales)
        specs
    in
    List.iter
      (fun p ->
        damp_block p.pre_damp;
        apply_plan_op_block ws.bnoisy p;
        if p.error_parts <> [] then begin
          windows := !windows + live;
          for k = 0 to live - 1 do
            match Noise.draw_error rngs.(k) ~dims:p.error_dims ~p:p.error_p with
            | None -> ()
            | Some factors ->
              incr diverged;
              List.iter2
                (fun (device, role) pauli ->
                  State_block.apply_lane ws.bnoisy k ~targets:[ device ]
                    (embed_error ~device_dim role pauli))
                p.error_parts factors;
              draws.(k) <- draws.(k) + 1
          done
        end)
      plan.plan_ops;
    damp_block plan.final_damp;
    State_block.overlap2_into ws.bover ws.bideal ws.bnoisy;
    leakage_block_with leak_tables ws.bnoisy ~inside:ws.binside ws.bleak;
    (Array.init live (fun k -> (ws.bover.(k), ws.bleak.(k), draws.(k))), !diverged, !windows)
  in
  let flush_block_metrics samples ~diverged ~windows dur =
    Telemetry.Metrics.series_observe block_us_series dur;
    let n = Array.length samples in
    Telemetry.Metrics.cell_add blocks_cell 1;
    Telemetry.Metrics.cell_add trajectories_cell n;
    Telemetry.Metrics.cell_add (Domain.DLS.get domain_traj_cell) n;
    Telemetry.Metrics.cell_add lane_windows_cell windows;
    Telemetry.Metrics.cell_add mask_divergence_cell diverged;
    (* Each plan op was dispatched twice per live lane: the ideal pass and
       the noisy pass. *)
    Array.iter
      (fun (c, cnt) -> Telemetry.Metrics.cell_add c (2 * cnt * n))
      plan.plan_dispatch
  in
  let run_block j ~batch =
    if not (Telemetry.active ()) then
      let samples, _, _ = run_block_raw j ~batch in
      samples
    else if not (Telemetry.enabled ()) then begin
      (* Always-on plane: same hand-inlined shape as [run_trajectory]. *)
      let start_us = Clock.now_us () in
      Recorder.record_begin_at "trajectory-block" start_us;
      match run_block_raw j ~batch with
      | samples, diverged, windows ->
        let end_us = Clock.now_us () in
        Recorder.record_end_at "trajectory-block" end_us;
        if Telemetry.metrics_enabled () then
          flush_block_metrics samples ~diverged ~windows (end_us -. start_us);
        samples
      | exception exn ->
        let bt = Printexc.get_raw_backtrace () in
        Recorder.record_end_at "trajectory-block" (Clock.now_us ());
        Printexc.raise_with_backtrace exn bt
    end
    else begin
      let (samples, diverged, windows), dur =
        Telemetry.Span.with_timed ~name:"trajectory-block" (fun () ->
            run_block_raw j ~batch)
      in
      if Telemetry.metrics_enabled () then flush_block_metrics samples ~diverged ~windows dur;
      samples
    end
  in
  let domains =
    match domains with Some d -> max 1 d | None -> Pool.default_domains ()
  in
  (* Never allocate wider planes than there are trajectories: a 2-trajectory
     run with the default width would otherwise sweep 8-lane-stride planes
     with 6 dead lanes. Lane k's stream depends only on its trajectory
     index, so clamping changes no statistics. *)
  let batch = match batch with Some b -> max 1 b | None -> default_batch () in
  let batch = min batch config.trajectories in
  let samples =
    if batch <= 1 || config.trajectories <= 1 then begin
      if domains <= 1 || config.trajectories <= 1 then
        Array.init config.trajectories run_trajectory
      else
        Pool.map_array ~domains (Pool.shared ~domains ()) ~n:config.trajectories
          ~f:run_trajectory
    end
    else begin
      let nblocks = (config.trajectories + batch - 1) / batch in
      let blocks =
        if domains <= 1 || nblocks <= 1 then Array.init nblocks (run_block ~batch)
        else
          Pool.map_array ~domains (Pool.shared ~domains ()) ~n:nblocks
            ~f:(run_block ~batch)
      in
      let samples = Array.make config.trajectories (0., 0., 0) in
      Array.iteri
        (fun j arr -> Array.blit arr 0 samples (j * batch) (Array.length arr))
        blocks;
      samples
    end
  in
  let n = float_of_int config.trajectories in
  let mean = Array.fold_left (fun a (f, _, _) -> a +. f) 0. samples /. n in
  let var =
    Array.fold_left (fun a (f, _, _) -> a +. ((f -. mean) *. (f -. mean))) 0. samples
    /. Float.max 1. (n -. 1.)
  in
  let summary =
    { mean_fidelity = mean; sem = sqrt (var /. n); trajectories = config.trajectories }
  in
  let mean_leakage = Array.fold_left (fun a (_, l, _) -> a +. l) 0. samples /. n in
  let mean_error_draws =
    Array.fold_left (fun a (_, _, d) -> a +. float_of_int d) 0. samples /. n
  in
  { summary; mean_leakage; mean_error_draws }

let simulate_detailed ?(config = default_config) ?domains ?batch (compiled : Physical.t) =
  (* The span (args and string building included) is only worth
     constructing under full telemetry; the always-on metrics+recorder
     plane gets the per-block spans from [run_block] — on a short simulate
     an extra wrapper span is measurable against the <= 5 % overhead
     budget. The flight-recorder bracket dumps the per-domain rings when a
     trajectory raises (then re-raises); disarmed it is exactly the body. *)
  if not (Telemetry.enabled ()) then
    Recorder.with_crash_dump ~label:"simulate" (fun () ->
        simulate_detailed_body ~config ?domains ?batch compiled)
  else
    Telemetry.Span.with_ ~name:"executor/simulate"
      ~args:
        [ ("strategy", compiled.Physical.strategy.Strategy.name);
          ("trajectories", string_of_int config.trajectories) ]
      (fun () ->
        Recorder.with_crash_dump ~label:"simulate" (fun () ->
            simulate_detailed_body ~config ?domains ?batch compiled))

let simulate ?config ?domains ?batch compiled =
  (match config with
  | Some c -> simulate_detailed ~config:c ?domains ?batch compiled
  | None -> simulate_detailed ?domains ?batch compiled)
    .summary
