open Waltz_linalg
open Waltz_qudit
open Waltz_noise
open Waltz_sim

type config = { model : Noise.model; trajectories : int; base_seed : int }

let default_config = { model = Noise.default; trajectories = 50; base_seed = 2023 }

type result = { mean_fidelity : float; sem : float; trajectories : int }

let max_devices ~device_dim = if device_dim = 4 then 11 else 22

(* A compiled op, prepared for fast repeated execution. *)
type plan_op = {
  devices : int list;  (** state wires the lifted gate acts on, in order *)
  lifted : Mat.t;  (** unitary over those device wires *)
  error_p : float;
  error_parts : (int * Physical.noise_role) list;  (** device, role *)
  part_devices : int list;  (** all touched devices (idle accounting) *)
  start : float;
  duration : float;
}

let lift_gate ~device_dim (op : Physical.op) =
  (* Devices in order of first appearance among the targets. *)
  let devices =
    List.fold_left
      (fun acc (d, _) -> if List.mem d acc then acc else acc @ [ d ])
      [] op.Physical.targets
  in
  let wires_per_device = if device_dim = 4 then 2 else 1 in
  let total_wires = wires_per_device * List.length devices in
  let wire_of (d, s) =
    let rec index i = function
      | [] -> assert false
      | d' :: rest -> if d' = d then i else index (i + 1) rest
    in
    let base = wires_per_device * index 0 devices in
    if device_dim = 4 then base + s else base
  in
  let lifted =
    Embed.on_qubits ~n:total_wires
      ~targets:(List.map wire_of op.Physical.targets)
      op.Physical.gate
  in
  (devices, lifted)

let plan ~model (compiled : Physical.t) =
  let device_dim = compiled.Physical.device_dim in
  List.map
    (fun ((op : Physical.op), start) ->
      let devices, lifted = lift_gate ~device_dim op in
      let err = 1. -. op.Physical.fidelity in
      let err = if op.Physical.touches_ww then err *. model.Noise.ww_error_scale else err in
      let error_parts =
        List.filter_map
          (fun (p : Physical.device_part) ->
            match p.Physical.noise with
            | Physical.Quiet -> None
            | role -> Some (p.Physical.device, role))
          op.Physical.parts
      in
      { devices;
        lifted;
        error_p = Float.max 0. err;
        error_parts;
        part_devices = List.map (fun (p : Physical.device_part) -> p.Physical.device) op.Physical.parts;
        start;
        duration = op.Physical.duration_ns })
    (Physical.schedule compiled)

let initial_allowed (compiled : Physical.t) =
  let device_dim = compiled.Physical.device_dim in
  let allowed = Array.make compiled.Physical.device_count [ 0 ] in
  if device_dim = 2 then
    Array.iter (fun (d, _) -> allowed.(d) <- [ 0; 1 ]) compiled.Physical.initial_map
  else begin
    let slots = Array.make compiled.Physical.device_count [] in
    Array.iter (fun (d, s) -> slots.(d) <- s :: slots.(d)) compiled.Physical.initial_map;
    Array.iteri
      (fun d occupied ->
        allowed.(d) <-
          (match List.sort_uniq compare occupied with
          | [] -> [ 0 ]
          | [ 1 ] -> [ 0; 1 ]
          | [ 0 ] -> [ 0; 2 ]
          | _ -> [ 0; 1; 2; 3 ]))
      slots
  end;
  allowed

let apply_plan_op state p = State.apply state ~targets:p.devices p.lifted

let embed_error ~device_dim role pauli =
  match (role, device_dim) with
  | Physical.P4, 4 -> pauli
  | Physical.P2 _, 2 -> pauli
  | Physical.P2 0, 4 -> Mat.kron pauli Gates.id2
  | Physical.P2 _, 4 -> Mat.kron Gates.id2 pauli
  | Physical.P4, _ -> invalid_arg "Executor: P4 errors need 4-level devices"
  | _ -> invalid_arg "Executor: inconsistent error role"

let inject_errors rng ~device_dim state p =
  if p.error_parts = [] then 0
  else begin
    let dims =
      List.map (fun (_, role) -> match role with Physical.P4 -> 4 | _ -> 2) p.error_parts
    in
    match Noise.draw_error rng ~dims ~p:p.error_p with
    | None -> 0
    | Some factors ->
      List.iter2
        (fun (device, role) pauli ->
          State.apply state ~targets:[ device ] (embed_error ~device_dim role pauli))
        p.error_parts factors;
      1
  end

let run_noisy rng ~model ~device_dim ~device_count ~total_duration plan_ops state =
  let last_busy = Array.make device_count 0. in
  let draws = ref 0 in
  let idle_damp device until =
    let dt = until -. last_busy.(device) in
    if dt > 1e-9 then begin
      let lambdas = Noise.damping_lambdas model ~d:device_dim ~dt_ns:dt in
      State.damp state rng ~wire:device ~lambdas
    end
  in
  List.iter
    (fun p ->
      List.iter (fun d -> idle_damp d p.start) p.part_devices;
      apply_plan_op state p;
      draws := !draws + inject_errors rng ~device_dim state p;
      List.iter (fun d -> last_busy.(d) <- p.start +. p.duration) p.part_devices)
    plan_ops;
  for d = 0 to device_count - 1 do
    idle_damp d total_duration
  done;
  !draws

let run_ideal (compiled : Physical.t) state =
  let plan_ops = plan ~model:Noise.default compiled in
  let out = State.copy state in
  List.iter (fun p -> apply_plan_op out p) plan_ops;
  out

(* Population outside the computational subspace defined by a placement
   map: a device's allowed levels depend on how many qubits it holds. *)
let leakage_against ~map (compiled : Physical.t) state =
  let device_dim = compiled.Physical.device_dim in
  let allowed = Array.make compiled.Physical.device_count [ 0 ] in
  if device_dim = 2 then Array.iter (fun (d, _) -> allowed.(d) <- [ 0; 1 ]) map
  else begin
    let slots = Array.make compiled.Physical.device_count [] in
    Array.iter (fun (d, s) -> slots.(d) <- s :: slots.(d)) map;
    Array.iteri
      (fun d occupied ->
        allowed.(d) <-
          (match List.sort_uniq compare occupied with
          | [] -> [ 0 ]
          | [ 1 ] -> [ 0; 1 ]
          | [ 0 ] -> [ 0; 2 ]
          | _ -> [ 0; 1; 2; 3 ]))
      slots
  end;
  let amps = State.amplitudes state in
  let dims = Array.make compiled.Physical.device_count device_dim in
  let strides = Array.make compiled.Physical.device_count 1 in
  for d = compiled.Physical.device_count - 2 downto 0 do
    strides.(d) <- strides.(d + 1) * dims.(d + 1)
  done;
  let inside = ref 0. in
  for idx = 0 to Waltz_linalg.Vec.dim amps - 1 do
    let ok = ref true in
    for d = 0 to compiled.Physical.device_count - 1 do
      if not (List.mem (idx / strides.(d) mod device_dim) allowed.(d)) then ok := false
    done;
    if !ok then
      inside :=
        !inside
        +. (amps.Waltz_linalg.Vec.re.(idx) *. amps.Waltz_linalg.Vec.re.(idx))
        +. (amps.Waltz_linalg.Vec.im.(idx) *. amps.Waltz_linalg.Vec.im.(idx))
  done;
  1. -. !inside

type detailed = { summary : result; mean_leakage : float; mean_error_draws : float }

let simulate_detailed ?(config = default_config) (compiled : Physical.t) =
  let device_dim = compiled.Physical.device_dim in
  if compiled.Physical.device_count > max_devices ~device_dim then
    invalid_arg
      (Printf.sprintf "Executor.simulate: %d devices exceeds the %d-device memory guard"
         compiled.Physical.device_count (max_devices ~device_dim));
  let model = config.model in
  let plan_ops = plan ~model compiled in
  let total_duration =
    List.fold_left (fun acc p -> Float.max acc (p.start +. p.duration)) 0. plan_ops
  in
  let dims = Array.make compiled.Physical.device_count device_dim in
  let allowed = initial_allowed compiled in
  let samples =
    List.init config.trajectories (fun k ->
        let rng = Rng.make ~seed:(config.base_seed + (7919 * k)) in
        let input = State.random_supported rng ~dims ~allowed in
        let ideal = State.copy input in
        List.iter (fun p -> apply_plan_op ideal p) plan_ops;
        let noisy = State.copy input in
        let draws =
          run_noisy rng ~model ~device_dim ~device_count:compiled.Physical.device_count
            ~total_duration plan_ops noisy
        in
        let leak = leakage_against ~map:compiled.Physical.final_map compiled noisy in
        (State.overlap2 ideal noisy, leak, draws))
  in
  let n = float_of_int config.trajectories in
  let fidelities = List.map (fun (f, _, _) -> f) samples in
  let mean = List.fold_left ( +. ) 0. fidelities /. n in
  let var =
    List.fold_left (fun a f -> a +. ((f -. mean) *. (f -. mean))) 0. fidelities
    /. Float.max 1. (n -. 1.)
  in
  let summary =
    { mean_fidelity = mean; sem = sqrt (var /. n); trajectories = config.trajectories }
  in
  let mean_leakage = List.fold_left (fun a (_, l, _) -> a +. l) 0. samples /. n in
  let mean_error_draws =
    List.fold_left (fun a (_, _, d) -> a +. float_of_int d) 0. samples /. n
  in
  { summary; mean_leakage; mean_error_draws }

let simulate ?config compiled =
  (match config with
  | Some c -> simulate_detailed ~config:c compiled
  | None -> simulate_detailed compiled)
    .summary
