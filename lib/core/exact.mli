(** Exact channel execution of compiled circuits on small registers.

    Evolves the full density matrix with the exact amplitude-damping and
    depolarizing channels instead of sampling trajectories. Limited to
    three 4-level (or six 2-level) devices; used to validate that the
    trajectory executor's mean fidelity is unbiased. *)

type result = { mean_fidelity : float; inputs : int }

val max_exact_devices : device_dim:int -> int

val simulate_exact :
  ?model:Waltz_noise.Noise.model ->
  ?inputs:int ->
  ?base_seed:int ->
  Physical.t ->
  result
(** Average of ⟨ψ_ideal|ρ_final|ψ_ideal⟩ over [inputs] Haar-random logical
    inputs (default 10), with noise applied as exact channels at the same
    points the trajectory executor samples them. *)
