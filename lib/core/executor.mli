(** Trajectory-method execution of compiled circuits (Sec. 6.4).

    Each trajectory draws a Haar-random logical input state (random *quantum*
    states, as the paper stresses), runs the compiled schedule twice — once
    ideally and once with stochastic noise — and reports the squared overlap.
    Noise per op: amplitude damping on each participating device over its
    exact accumulated idle time, the op's unitary, then a depolarizing draw
    with probability 1 − F restricted to the operands' radices. *)

type config = {
  model : Waltz_noise.Noise.model;
  trajectories : int;
  base_seed : int;
}

val default_config : config
(** 50 trajectories, default noise model, seed 2023. *)

type result = { mean_fidelity : float; sem : float; trajectories : int }

val max_devices : device_dim:int -> int
(** Memory guard: the largest register the executor will simulate
    (11 four-level or 22 two-level devices). *)

val simulate : ?config:config -> ?domains:int -> ?batch:int -> Physical.t -> result
(** Raises [Invalid_argument] if the compiled circuit exceeds
    [max_devices].

    Trajectories fan out across [domains] OCaml domains (default: the
    [WALTZ_DOMAINS] environment knob, else the machine's recommended domain
    count; [1] runs the exact legacy sequential path). Each trajectory owns
    an independent seed stream ([base_seed + 7919·k]) and results are
    reduced in trajectory order, so every statistic is bit-identical at
    every domain count.

    Within a domain, [batch] trajectories run in lockstep over a
    structure-of-arrays state block (default: the [WALTZ_BATCH] environment
    knob, else {!default_batch}; [1] runs the scalar engine). Each lane
    keeps its own RNG stream and every batched sweep performs the scalar
    engine's floating-point operations in the same per-lane order, so the
    statistics are also bit-identical at every batch width — the
    determinism suite enforces the full [batch] × [domains] grid. *)

val default_batch : unit -> int
(** The lockstep batch width used when [?batch] is not given: the
    [WALTZ_BATCH] environment knob (clamped to [1, 1024]), else 8. *)

type detailed = {
  summary : result;
  mean_leakage : float;
      (** average final population outside the occupied computational
          subspace (errors that promoted bare qubits into |2⟩/|3⟩) *)
  mean_error_draws : float;  (** average depolarizing events per trajectory *)
}

val simulate_detailed :
  ?config:config -> ?domains:int -> ?batch:int -> Physical.t -> detailed
(** See {!simulate} for the [domains]/[batch] knobs and the determinism
    guarantee. *)

val run_ideal : Physical.t -> Waltz_sim.State.t -> Waltz_sim.State.t
(** Applies the compiled ops without noise to a copy of the given physical
    state (exposed for tests: compiled circuits must reproduce the logical
    unitary). *)

(** {1 Internals shared with the exact (density-matrix) executor} *)

val lift_gate : device_dim:int -> Physical.op -> int list * Waltz_linalg.Mat.t
(** The devices an op touches (in target order) and its unitary lifted to
    their joint space. Memoized on (device_dim, target-slot pattern, op
    label, gate dimension), so lookups never hash the gate's float arrays;
    same-key ops with different matrices fall back to matrix equality within
    the bucket (counted as [executor.lift_table.collision]). Ops repeating a
    gate on different devices share one Kronecker lift. *)

val lift_gate_uncached : device_dim:int -> Physical.op -> int list * Waltz_linalg.Mat.t
(** The raw (un-memoized) lift; exposed so tests can check the cache against
    freshly built matrices. *)

val embed_error : device_dim:int -> Physical.noise_role -> Waltz_linalg.Mat.t -> Waltz_linalg.Mat.t
(** Lifts a per-operand Pauli factor onto a device's full space (a P2 factor
    on a 4-level device lands on the occupied slot). *)

val initial_allowed : Physical.t -> int list array
(** Allowed levels per device for preparing random logical inputs under the
    initial placement. *)

(** {1 Byte accounting shared with the resource certificates}

    The executor observes its own allocations through these formulas
    (counters [executor.workspace.bytes], [executor.workspace.block_bytes]
    and [executor.plan.bytes], flushed when a per-domain workspace or a plan
    is built), and [Waltz_analysis.Resource] certifies through the same
    ones, so the soundness invariant "certified >= observed" cannot be
    broken by the two sides counting different things. All figures are
    array payload bytes (8 per float or int word), headers excluded. *)

val workspace_bytes : dims:int array -> int
(** Payload bytes of one domain's scalar trajectory workspace (the
    input/ideal/noisy state triple) for a register shape. *)

val block_workspace_bytes : dims:int array -> cap:int -> int
(** Payload bytes of one domain's lockstep workspace at batch width [cap]
    (three SoA blocks plus the per-lane reduction buffers). *)

val plan_op_bytes :
  lifted:Waltz_linalg.Mat.t -> kernel:Waltz_sim.Kernel.t -> int
(** Plan-resident payload bytes of one compiled op: the lifted unitary plus
    the kernel's {!Waltz_sim.Kernel.footprint_bytes}. *)

val plan_cache_capacity : int
(** MRU capacity of the cross-call plan cache — the multiplier in the
    certificate's worst-case cache-residency bound (RES03). *)
