(** Mutable compilation state: which logical qubit occupies which (device,
    slot), plus the op emission buffer.

    Slot discipline (see [Waltz_qudit.Encoding]): on 4-level devices a lone
    qubit occupies slot 1 and an encoded pair occupies slots 0 and 1; on
    2-level devices the single slot is 0. *)

open Waltz_arch

type t

type scratch = {
  mutable mask_epoch : int;
  mutable bfs_epoch : int;
  blocked_stamp : int array;  (** device → [mask_epoch] when blocked *)
  frozen_stamp : int array;  (** logical → [mask_epoch] when frozen *)
  bfs_seen : int array;  (** device → [bfs_epoch] when visited *)
  bfs_prev : int array;  (** device → BFS predecessor *)
  bfs_queue : int array;  (** flat FIFO; each device enqueued at most once *)
}
(** Epoch-stamped working storage for the router, sized once at [create]
    and reused across every routing step (see [Waltz_core.Router]). A
    membership test is "stamp equals current epoch", so clearing a mask is
    a single epoch bump, never an array wipe. Lives on the layout so
    parallel compilations never share scratch. *)

val create :
  Topology.t ->
  Strategy.t ->
  n_logical:int ->
  weights:float array array ->
  t

val topology : t -> Topology.t

val strategy : t -> Strategy.t

val n_logical : t -> int

val device_dim : t -> int

val weights : t -> float array array
(** The lookahead interaction weights of the decomposed circuit. *)

val pos : t -> int -> int * int
(** Current (device, slot) of a logical qubit. Raises if unplaced. *)

val occupant : t -> int -> int -> int option

val occupancy : t -> int -> int
(** Number of qubits on a device (0, 1 or 2). *)

val lone_slot : t -> int -> int option
(** The slot of a device's single qubit, when occupancy is exactly 1. *)

val device_of : t -> int -> int

val is_placed : t -> int -> bool

val device_index : t -> int array
(** Incrementally maintained logical → device aggregate (-1 while
    unplaced), kept in sync by [place]/[move]/[swap_occupants]/[restore].
    The router's disruption loop reads it directly instead of unpacking
    [pos] options. Shared, not a copy — callers must not mutate it. *)

val scratch : t -> scratch

val place : t -> int -> int * int -> unit
(** Initial placement into a free slot. *)

val swap_occupants : t -> int * int -> int * int -> unit
(** Exchange the contents of two virtual slots (either may be empty). *)

val move : t -> int -> int * int -> unit
(** Relocate a qubit to a free slot. *)

val emit : t -> Physical.op -> unit

val ops : t -> Physical.op list
(** Emitted ops in program order. *)

val snapshot_map : t -> (int * int) array
(** Current logical → (device, slot) assignment. *)

type checkpoint

val checkpoint : t -> checkpoint
(** O(1) mark of the placement undo journal and the emission buffer, for
    backtracking when a routing order dead-ends. Restoring replays only the
    mutations made since the mark, so an attempt that touched little costs
    little to roll back. Checkpoints must be restored in LIFO order. *)

val restore : t -> checkpoint -> unit
(** Rolls the layout back to [checkpoint]. Raises [Invalid_argument] when
    the checkpoint is newer than the current state (LIFO violation). *)

val part : t -> ?occ_after:int -> int -> Physical.device_part
(** Builds the noise/occupancy annotation for a device using the *current*
    table as the before-state. The noise role is P4 when the device holds
    (or will hold) two qubits, P2 on the lone slot when it holds one, and
    Quiet when empty throughout. Call before mutating the layout. *)
