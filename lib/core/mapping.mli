(** Initial placement (Sec. 5.2): greedy, locality-maximizing mapping of
    logical qubits onto the interaction graph using the lookahead weights
    w(i,j) = Σ_t o(i,j,t)/t. *)

val initial : Layout.t -> unit
(** Places every logical qubit. The highest-total-weight qubit goes to the
    centre-most device; each subsequent qubit (chosen by weight to the
    already-placed set) goes to the free slot minimizing
    Σ_j w(i,j)·d(slot, φ(j)) over candidate slots adjacent to the placed
    region. *)
