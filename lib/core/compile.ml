open Waltz_qudit
open Waltz_circuit
open Waltz_arch
module Telemetry = Waltz_telemetry.Telemetry
module Sanitize = Waltz_sanitizer.Sanitize

let device_count strategy n =
  match strategy.Strategy.encoding with
  | Strategy.Bare | Strategy.Intermediate -> n
  | Strategy.Packed -> (n + 1) / 2

type verifier =
  topology:Topology.t -> Circuit.t option -> Physical.t -> (unit, string) result

(* Filled in by [Waltz_verify.Verify] at link time; [compile] cannot depend
   on the verifier library directly without a dependency cycle. *)
let verifier_hook : verifier option ref = ref None

(* Same shape, filled in by [Waltz_analysis.Analysis]: fixpoint static
   analysis over the finished program ([compile ~analyze:true]). *)
let analyzer_hook : verifier option ref = ref None

(* Filled in by [Waltz_analysis.Analysis] as well: static resource
   certification ([compile ~certify:true]). Unlike verify/analyze it never
   fails the compile — it attaches a certificate to the program in the
   analysis layer's side table (retrieved via
   [Waltz_analysis.Resource.certificate_of]). *)
let certifier_hook : (Physical.t -> unit) option ref = ref None

let dist layout a b =
  Topology.distance (Layout.topology layout)
    (Layout.device_of layout a) (Layout.device_of layout b)

(* Pair selection for three-qubit gates: candidate (pair, lone) splits of the
   operand triple, preferring [preferred] pairs when they are
   distance-optimal. *)
let choose_pair layout ~preferred ?(hint = 0) operands =
  let splits =
    match operands with
    | [ a; b; c ] -> [ ((a, b), c); ((a, c), b); ((b, c), a) ]
    | _ -> invalid_arg "choose_pair"
  in
  let d ((x, y), _) = dist layout x y in
  let same (x, y) (x', y') = (x = x' && y = y') || (x = y' && y = x') in
  let is_preferred (p, _) = List.exists (same p) preferred in
  (* Rank: distance first, preferred pairs winning ties; [hint] rotates to
     the next-best split when the best one dead-ends. *)
  let ranked =
    List.stable_sort
      (fun s1 s2 ->
        match compare (d s1) (d s2) with
        | 0 -> compare (is_preferred s2) (is_preferred s1)
        | c -> c)
      splits
  in
  List.nth ranked (hint mod List.length ranked)

(* ---- Intermediate (mixed-radix) three-qubit execution ---- *)

let mr_slot_of layout q = snd (Layout.pos layout q)

let encode_pair layout (x, y) ~toward ~want_at_slot =
  (* Route the pair adjacent, pick the member closer to [toward] as host. *)
  Router.route_pair layout ~frozen:[ toward ] x y;
  let dx = Layout.device_of layout x and dy = Layout.device_of layout y in
  let dt = Layout.device_of layout toward in
  let topo = Layout.topology layout in
  let host, incoming =
    if Topology.distance topo dx dt <= Topology.distance topo dy dt then (x, y) else (y, x)
  in
  let src = Layout.device_of layout incoming and dst = Layout.device_of layout host in
  (* Slot choreography: [want_at_slot] optionally pins one logical qubit to a
     slot; the occupant ends at slot 1 with incoming_slot 0, slot 0 with
     incoming_slot 1. *)
  let incoming_slot =
    match want_at_slot with
    | None -> 0
    | Some (q, s) ->
      if q = incoming then s
      else if q = host then (if s = 1 then 0 else 1)
      else 0
  in
  Emit.enc_op layout ~src ~dst ~incoming_slot;
  (incoming, src, dst)

let intermediate_3q layout ~hint (gate : Gate.t) =
  let strategy = Layout.strategy layout in
  let choreograph = strategy.Strategy.choreograph_slots in
  match (gate.Gate.kind, gate.Gate.qubits) with
  | Gate.Ccz, [ a; b; c ] ->
    let (x, y), z = choose_pair layout ~preferred:[] ~hint [ a; b; c ] in
    let q_in, src, dst = encode_pair layout (x, y) ~toward:z ~want_at_slot:None in
    Router.route_to_adjacency layout ~blocked:[ src ] ~frozen:[ x; y ] ~anchor:x z;
    Emit.three_qubit_pulse layout ~label:Calibration.mr_ccz.Calibration.label
      ~entry:Calibration.mr_ccz ~kind:gate.Gate.kind ~operands:[ a; b; c ];
    Emit.dec_op layout ~ququart:dst ~outgoing_slot:(mr_slot_of layout q_in) ~dst:src
  | Gate.Ccx, [ c0; c1; t ] ->
    let preferred =
      if not choreograph then []
      else
        match strategy.Strategy.three_q with
        | Strategy.Retarget_ccx | Strategy.Direct_ccx -> [ (c0, c1) ]
        | _ -> []
    in
    let (x, y), z = choose_pair layout ~preferred ~hint [ c0; c1; t ] in
    let retarget = strategy.Strategy.three_q = Strategy.Retarget_ccx && z <> t in
    (* Direct: make sure an encoded target sits at slot 1 (619 ns vs 697). *)
    let want_at_slot =
      if choreograph && (not retarget) && z <> t then Some (t, 1) else None
    in
    let q_in, src, dst = encode_pair layout (x, y) ~toward:z ~want_at_slot in
    Router.route_to_adjacency layout ~blocked:[ src ] ~frozen:[ x; y ] ~anchor:x z;
    if retarget then begin
      (* CCX(c0,c1,t) = H_t H_z CCX(cE, t, z) H_t H_z where cE is the encoded
         control and z the bare one (Fig. 6b): best configuration, 412 ns. *)
      let ce = if x = t then y else x in
      Emit.one_qubit_op layout Gate.H t;
      Emit.one_qubit_op layout Gate.H z;
      let entry = Calibration.mr_ccx ~target:Ququart_gates.Qubit in
      Emit.three_qubit_pulse layout ~label:entry.Calibration.label ~entry
        ~kind:Gate.Ccx ~operands:[ ce; t; z ];
      Emit.one_qubit_op layout Gate.H t;
      Emit.one_qubit_op layout Gate.H z
    end
    else begin
      let entry =
        if z = t then Calibration.mr_ccx ~target:Ququart_gates.Qubit
        else Calibration.mr_ccx ~target:(Ququart_gates.Slot (mr_slot_of layout t))
      in
      Emit.three_qubit_pulse layout ~label:entry.Calibration.label ~entry ~kind:Gate.Ccx
        ~operands:[ c0; c1; t ]
    end;
    Emit.dec_op layout ~ququart:dst ~outgoing_slot:(mr_slot_of layout q_in) ~dst:src
  | Gate.Cswap, [ c; t0; t1 ] ->
    let preferred =
      if not choreograph then []
      else
        match strategy.Strategy.cswap with
        | Strategy.Cswap_oriented -> [ (t0, t1) ]
        | _ -> []
    in
    let (x, y), z = choose_pair layout ~preferred ~hint [ c; t0; t1 ] in
    (* A control encoded in the ququart is cheapest at slot 0 (684 ns). *)
    let want_at_slot = if choreograph && z <> c then Some (c, 0) else None in
    let q_in, src, dst = encode_pair layout (x, y) ~toward:z ~want_at_slot in
    Router.route_to_adjacency layout ~blocked:[ src ] ~frozen:[ x; y ] ~anchor:x z;
    let entry =
      if z = c then Calibration.mr_cswap ~control:Ququart_gates.Qubit
      else Calibration.mr_cswap ~control:(Ququart_gates.Slot (mr_slot_of layout c))
    in
    Emit.three_qubit_pulse layout ~label:entry.Calibration.label ~entry ~kind:Gate.Cswap
      ~operands:[ c; t0; t1 ];
    Emit.dec_op layout ~ququart:dst ~outgoing_slot:(mr_slot_of layout q_in) ~dst:src
  | _ -> invalid_arg "intermediate_3q: unsupported gate"

(* ---- Full-ququart three-qubit execution ---- *)

let packed_3q layout ~hint (gate : Gate.t) =
  let strategy = Layout.strategy layout in
  let operands = gate.Gate.qubits in
  let preferred =
    if not strategy.Strategy.choreograph_slots then []
    else
      match (gate.Gate.kind, operands) with
      | Gate.Ccx, [ c0; c1; _ ] -> [ (c0, c1) ]
      | Gate.Cswap, [ _; t0; t1 ] when strategy.Strategy.cswap = Strategy.Cswap_oriented
        -> [ (t0, t1) ]
      | _ -> []
  in
  (* Ensure two operands share a device. *)
  let cohosted () =
    let devs = List.map (Layout.device_of layout) operands in
    match (operands, devs) with
    | [ a; b; c ], [ da; db; dc ] ->
      if da = db then Some ((a, b), c)
      else if da = dc then Some ((a, c), b)
      else if db = dc then Some ((b, c), a)
      else None
    | _ -> None
  in
  let (x, y), z =
    match cohosted () with
    | Some split -> split
    | None ->
      let (x, y), z = choose_pair layout ~preferred ~hint operands in
      Router.route_pair layout ~frozen:[ z ] x y;
      if Layout.device_of layout x <> Layout.device_of layout y then begin
        let dy, sy = Layout.pos layout y in
        Emit.swap_op layout (Layout.pos layout x) (dy, 1 - sy)
      end;
      ((x, y), z)
  in
  let host = Layout.device_of layout x in
  Router.route_to_adjacency layout ~frozen:[ x; y ] ~anchor:x z;
  let slot q = snd (Layout.pos layout q) in
  let z_bare = Layout.occupancy layout (Layout.device_of layout z) = 1 in
  let entry =
    match (gate.Gate.kind, operands) with
    | Gate.Ccz, _ ->
      if z_bare then Calibration.mr_ccz else Calibration.fq_ccz ~lone_slot:(slot z)
    | Gate.Ccx, [ c0; c1; t ] ->
      let controls_together = (x = c0 && y = c1) || (x = c1 && y = c0) in
      if controls_together then
        if z_bare then Calibration.mr_ccx ~target:Ququart_gates.Qubit
        else Calibration.fq_ccx_controls_together ~target_slot:(slot t)
      else if z_bare then Calibration.mr_ccx ~target:(Ququart_gates.Slot (slot t))
      else begin
        (* Split controls: z is a control alone in its device; the host pair
           is (control, target). *)
        let host_control = if x = t then y else x in
        Calibration.fq_ccx_split ~a_slot:(slot z) ~b_control_slot:(slot host_control)
      end
    | Gate.Cswap, [ c; t0; t1 ] ->
      let targets_together = (x = t0 && y = t1) || (x = t1 && y = t0) in
      if targets_together then
        if z_bare then Calibration.mr_cswap ~control:Ququart_gates.Qubit
        else Calibration.fq_cswap_targets_together ~control_slot:(slot c)
      else begin
        let lone_target = if z = c then assert false else z in
        if z_bare then Calibration.mr_cswap ~control:(Ququart_gates.Slot (slot c))
        else
          Calibration.fq_cswap_targets_split ~control_slot:(slot c)
            ~b_target_slot:(slot lone_target)
      end
    | _ -> invalid_arg "packed_3q: unsupported gate"
  in
  ignore host;
  Emit.three_qubit_pulse layout ~label:entry.Calibration.label ~entry ~kind:gate.Gate.kind
    ~operands

(* ---- Full-ququart four-qubit execution (extension beyond the paper) ---- *)

(* Move [q] into [device], displacing a non-frozen occupant if needed. *)
let move_into layout ~frozen q device =
  if Layout.device_of layout q <> device then begin
    Router.route_adjacent_to_device layout ~frozen ~device q;
    if Layout.device_of layout q <> device then begin
      let slot =
        match
          List.find_opt
            (fun s ->
              match Layout.occupant layout device s with
              | None -> true
              | Some occ -> not (List.mem occ frozen))
            [ 0; 1 ]
        with
        | Some s -> s
        | None -> failwith "move_into: device fully frozen"
      in
      Emit.swap_op layout (Layout.pos layout q) (device, slot)
    end
  end

let packed_4q layout (gate : Gate.t) =
  match (gate.Gate.kind, gate.Gate.qubits) with
  | Gate.Cccz, ([ a; b; c; d ] as operands) ->
    (* Co-host a pair, then fill an adjacent device with the other two. *)
    let pairs = [ (a, b); (a, c); (a, d); (b, c); (b, d); (c, d) ] in
    let cohosted =
      List.find_opt
        (fun (x, y) -> Layout.device_of layout x = Layout.device_of layout y)
        pairs
    in
    let x, y =
      match cohosted with
      | Some p -> p
      | None ->
        let best =
          List.fold_left
            (fun acc (x, y) ->
              let dxy = dist layout x y in
              match acc with
              | Some (_, _, best_d) when best_d <= dxy -> acc
              | _ -> Some (x, y, dxy))
            None pairs
        in
        let x, y, _ = Option.get best in
        Router.route_pair layout ~frozen:(List.filter (fun q -> q <> x && q <> y) operands) x y;
        if Layout.device_of layout x <> Layout.device_of layout y then begin
          let dy, sy = Layout.pos layout y in
          Emit.swap_op layout (Layout.pos layout x) (dy, 1 - sy)
        end;
        (x, y)
    in
    let host_a = Layout.device_of layout x in
    let z, w =
      match List.filter (fun q -> q <> x && q <> y) operands with
      | [ z; w ] -> (z, w)
      | _ -> assert false
    in
    (* Pick the neighbouring device closest to the remaining operands. *)
    let topo = Layout.topology layout in
    let host_b =
      List.fold_left
        (fun acc nd ->
          let cost q = Topology.distance topo (Layout.device_of layout q) nd in
          let c = cost z + cost w in
          match acc with Some (_, bc) when bc <= c -> acc | _ -> Some (nd, c))
        None
        (Topology.neighbors topo host_a)
      |> Option.get |> fst
    in
    move_into layout ~frozen:[ x; y; w ] z host_b;
    move_into layout ~frozen:[ x; y; z ] w host_b;
    let entry = Calibration.fq_cccz in
    Emit.three_qubit_pulse layout ~label:entry.Calibration.label ~entry ~kind:gate.Gate.kind
      ~operands
  | _ -> invalid_arg "packed_4q: only CCCZ reaches the four-qubit backend"

(* ---- iToffoli execution on bare qubits ---- *)

let itoffoli_3q layout ~hint (gate : Gate.t) =
  match (gate.Gate.kind, gate.Gate.qubits) with
  | Gate.Ccx, [ c0; c1; t ] ->
    (* Pick the centre operand minimizing routing and route the other two
       adjacent to it, backtracking over centre choices and routing orders
       when the placement dead-ends; Hadamards retarget when the centre is
       not the logical target (Fig. 6b/6d). *)
    let cost m =
      List.fold_left (fun acc q -> acc + if q = m then 0 else dist layout m q) 0
        [ c0; c1; t ]
    in
    let centers =
      List.stable_sort (fun a b -> compare (cost a) (cost b)) [ t; c0; c1 ]
    in
    let attempts =
      List.concat_map
        (fun m ->
          let others = List.filter (( <> ) m) [ c0; c1; t ] in
          match others with
          | [ u; v ] -> [ (m, u, v); (m, v, u) ]
          | _ -> assert false)
        centers
    in
    let attempts =
      (* Rotate so retries explore a different placement first. *)
      let k = hint mod List.length attempts in
      let rec rot i = function
        | l when i = 0 -> l
        | x :: rest -> rot (i - 1) (rest @ [ x ])
        | [] -> []
      in
      rot k attempts
    in
    let rec assemble = function
      | [] -> failwith "itoffoli_3q: could not assemble the triple"
      | (m, u, v) :: rest -> begin
        let cp = Layout.checkpoint layout in
        try
          Router.route_to_adjacency layout ~frozen:[ v ] ~anchor:m u;
          Router.route_to_adjacency layout ~frozen:[ u ] ~anchor:m v;
          m
        with Failure _ ->
          Layout.restore layout cp;
          assemble rest
      end
    in
    let center = assemble attempts in
    let retarget = center <> t in
    let controls =
      if retarget then List.filter (( <> ) center) [ c0; c1; t ] else [ c0; c1 ]
    in
    let u, v = match controls with [ u; v ] -> (u, v) | _ -> assert false in
    if retarget then begin
      Emit.one_qubit_op layout Gate.H t;
      Emit.one_qubit_op layout Gate.H center
    end;
    Emit.itoffoli_op layout u v center;
    (* Corrective CS† between the two controls: they flank the centre, so
       swap the centre qubit with one control first (Sec. 7). *)
    Emit.swap_op layout (Layout.pos layout center) (Layout.pos layout u);
    Emit.two_qubit_op layout Gate.Csdg u v;
    if retarget then begin
      Emit.one_qubit_op layout Gate.H t;
      Emit.one_qubit_op layout Gate.H center
    end
  | _ -> invalid_arg "itoffoli_3q: only CCX reaches the iToffoli backend"

(* Per-phase op accounting for the stats report: every emitted op, plus the
   communication overhead split the way Qompress reports it — SWAP movement
   (routing) vs ENC/DEC encode-decode choreography. *)
let record_op_counts ops =
  if Telemetry.enabled () then begin
    Telemetry.Metrics.incr ~by:(List.length ops) "compile.ops";
    List.iter
      (fun (op : Physical.op) ->
        if String.starts_with ~prefix:"SWAP" op.Physical.label then
          Telemetry.Metrics.incr "compile.swap_ops"
        else if op.Physical.label = "ENC" || op.Physical.label = "ENCdg" then
          Telemetry.Metrics.incr "compile.encdec_ops")
      ops
  end

let compile_uncached ~topo ?(verify = false) ?(analyze = false) strategy circuit =
  Telemetry.Span.with_ ~name:"compile"
    ~args:[ ("strategy", strategy.Strategy.name) ]
  @@ fun () ->
  let n = circuit.Circuit.n in
  let prepared =
    Telemetry.Span.with_ ~name:"compile/decompose" (fun () -> Decompose.pre strategy circuit)
  in
  let layout =
    Telemetry.Span.with_ ~name:"compile/map" (fun () ->
        let weights = Circuit.interaction_weights prepared in
        let layout = Layout.create topo strategy ~n_logical:n ~weights in
        Mapping.initial layout;
        layout)
  in
  let initial_map = Layout.snapshot_map layout in
  Telemetry.Span.with_ ~name:"compile/route+choreograph" (fun () ->
      List.iter
        (fun (gate : Gate.t) ->
          match Gate.arity gate.Gate.kind with
          | 1 -> Emit.one_qubit_op layout gate.Gate.kind (List.hd gate.Gate.qubits)
          | 2 -> begin
            match gate.Gate.qubits with
            | [ a; b ] ->
              Telemetry.Span.with_ ~name:"compile/route" (fun () ->
                  if not (Router.adjacent_or_same layout a b) then
                    Router.route_pair layout a b);
              Emit.two_qubit_op layout gate.Gate.kind a b
            | _ -> assert false
          end
          | 3 | 4 -> begin
            let handler ~hint =
              match (Gate.arity gate.Gate.kind, strategy.Strategy.encoding) with
              | 4, Strategy.Packed -> packed_4q layout gate
              | 4, _ -> invalid_arg "Compile: four-qubit gates should have been decomposed"
              | _, Strategy.Bare -> itoffoli_3q layout ~hint gate
              | _, Strategy.Intermediate -> intermediate_3q layout ~hint gate
              | _, Strategy.Packed -> packed_3q layout ~hint gate
            in
            (* Backtrack over operand splits when a routing order dead-ends. *)
            let rec attempt hint =
              let cp = Layout.checkpoint layout in
              try handler ~hint
              with Failure _ when hint < 5 ->
                Telemetry.Metrics.incr "compile.backtracks";
                Layout.restore layout cp;
                attempt (hint + 1)
            in
            Telemetry.Span.with_ ~name:"compile/choreograph" (fun () -> attempt 0)
          end
          | _ -> invalid_arg "Compile.compile: unsupported gate arity")
        prepared.Circuit.gates);
  let compiled =
    Telemetry.Span.with_ ~name:"compile/schedule" (fun () ->
        let ops = Layout.ops layout in
        record_op_counts ops;
        { Physical.strategy;
          n_logical = n;
          device_count = Topology.device_count topo;
          device_dim = Layout.device_dim layout;
          ops;
          initial_map;
          final_map = Layout.snapshot_map layout;
          schedule_memo = None })
  in
  if verify then begin
    match !verifier_hook with
    | None ->
      invalid_arg
        "Compile.compile ~verify:true: no verifier registered (link waltz_verify and \
         reference Waltz_verify.Verify)"
    | Some check -> begin
      match
        Telemetry.Span.with_ ~name:"compile/verify" (fun () ->
            check ~topology:topo (Some circuit) compiled)
      with
      | Ok () -> ()
      | Error report ->
        failwith (Printf.sprintf "Compile.compile: verification failed\n%s" report)
    end
  end;
  if analyze then begin
    match !analyzer_hook with
    | None ->
      invalid_arg
        "Compile.compile ~analyze:true: no analyzer registered (link waltz_analysis and \
         reference Waltz_analysis.Analysis)"
    | Some check -> begin
      match
        Telemetry.Span.with_ ~name:"compile/analyze" (fun () ->
            check ~topology:topo (Some circuit) compiled)
      with
      | Ok () -> ()
      | Error report ->
        failwith (Printf.sprintf "Compile.compile: analysis found errors\n%s" report)
    end
  end;
  compiled

(* ---- Compiled-program cache ---- *)

(* MRU cache over finished programs, the admission-side twin of the
   executor's plan cache: sweeps and repeated service requests compile the
   same (circuit, strategy, topology) over and over. Keyed by a cheap
   circuit fingerprint, confirmed by structural equality — fingerprints may
   collide, equal values may not. Programs are immutable once built, so
   sharing one across callers (and domains) is safe; it also keeps the
   executor's identity-keyed plan cache hot. Bounded MRU list: hits move to
   the front, inserts evict the tail. *)
type cache_entry = {
  key_fp : int;
  key_strategy : Strategy.t;
  key_topo : Topology.t;
  key_circuit : Circuit.t;
  program : Physical.t;
}

let program_cache : cache_entry list ref = ref []
let program_cache_mutex = Mutex.create ()
let program_cache_capacity = 32
let cache_hit_cell = Telemetry.Metrics.cell "compile.program_cache.hit"
let cache_miss_cell = Telemetry.Metrics.cell "compile.program_cache.miss"

let program_cache_enabled =
  ref
    (match Sys.getenv_opt "WALTZ_COMPILE_CACHE" with
    | Some ("0" | "false" | "off") -> false
    | _ -> true)

let set_program_cache on = program_cache_enabled := on

let program_cache_clear () =
  Mutex.lock program_cache_mutex;
  Sanitize.Lock.acquire "compile.program_cache_mutex";
  Sanitize.Shared.write "compile.program_cache";
  program_cache := [];
  Sanitize.Lock.release "compile.program_cache_mutex";
  Mutex.unlock program_cache_mutex

let cache_find ~fp ~strategy ~topo circuit =
  List.find_opt
    (fun e ->
      e.key_fp = fp && e.key_strategy = strategy && e.key_topo = topo
      && e.key_circuit = circuit)
    !program_cache

let compile ?topology ?(verify = false) ?(analyze = false) ?(certify = false) strategy
    circuit =
  let n = circuit.Circuit.n in
  let topo =
    match topology with Some t -> t | None -> Topology.mesh (device_count strategy n)
  in
  if Topology.device_count topo < device_count strategy n then
    invalid_arg "Compile.compile: topology too small for the circuit";
  let program =
  (* Verification/analysis have caller-visible effects (they can raise on
     the registered hooks), so those requests always compile fresh. *)
  if (not !program_cache_enabled) || verify || analyze then
    compile_uncached ~topo ~verify ~analyze strategy circuit
  else begin
    let fp = Circuit.fingerprint circuit in
    Mutex.lock program_cache_mutex;
    Sanitize.Lock.acquire "compile.program_cache_mutex";
    let cached = cache_find ~fp ~strategy ~topo circuit in
    match cached with
    | Some entry ->
      Sanitize.Shared.write "compile.program_cache";
      program_cache := entry :: List.filter (fun e -> not (e == entry)) !program_cache;
      Sanitize.Lock.release "compile.program_cache_mutex";
      Mutex.unlock program_cache_mutex;
      Telemetry.Metrics.cell_incr cache_hit_cell;
      entry.program
    | None ->
      Sanitize.Lock.release "compile.program_cache_mutex";
      Mutex.unlock program_cache_mutex;
      Telemetry.Metrics.cell_incr cache_miss_cell;
      let program = compile_uncached ~topo strategy circuit in
      Mutex.lock program_cache_mutex;
      Sanitize.Lock.acquire "compile.program_cache_mutex";
      (* Re-check before inserting: compilation ran outside the lock, so a
         concurrent caller may have compiled and inserted the same key in
         the meantime. Adopting the winner keeps the executor's [==]-keyed
         plan reuse exact and the effective capacity undiluted. *)
      let program =
        match cache_find ~fp ~strategy ~topo circuit with
        | Some entry -> entry.program
        | None ->
          Sanitize.Shared.write "compile.program_cache";
          program_cache :=
            { key_fp = fp; key_strategy = strategy; key_topo = topo;
              key_circuit = circuit; program }
            :: (if List.length !program_cache >= program_cache_capacity then
                  List.filteri (fun i _ -> i < program_cache_capacity - 1) !program_cache
                else !program_cache);
          program
      in
      Sanitize.Lock.release "compile.program_cache_mutex";
      Mutex.unlock program_cache_mutex;
      program
  end
  in
  (* Certification composes with the cache: it never raises and attaches
     its result to the returned program instance by identity, so a cache
     hit is simply re-certified (the analysis layer's own side table
     absorbs the repeat). *)
  if certify then begin
    match !certifier_hook with
    | None ->
      invalid_arg
        "Compile.compile ~certify:true: no certifier registered (link waltz_analysis \
         and reference Waltz_analysis.Analysis)"
    | Some attach ->
      Telemetry.Span.with_ ~name:"compile/certify" (fun () -> attach program)
  end;
  program

(* ---- Parallel strategy portfolio ---- *)

let compile_all ?topology ?domains jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  if n = 0 then []
  else if n = 1 then
    let s, c = jobs.(0) in
    [ compile ?topology s c ]
  else begin
    let pool = Waltz_runtime.Pool.shared ?domains () in
    let compiled =
      Waltz_runtime.Pool.map_array ?domains pool ~n ~f:(fun i ->
          let s, c = jobs.(i) in
          compile ?topology s c)
    in
    Array.to_list compiled
  end
