open Waltz_arch

let valid_slots layout device =
  match (Layout.strategy layout).Strategy.encoding with
  | Strategy.Bare -> [ (device, 0) ]
  | Strategy.Intermediate -> [ (device, 1) ]
  | Strategy.Packed -> [ (device, 0); (device, 1) ]

let free_slots layout =
  let topo = Layout.topology layout in
  List.concat_map
    (fun d ->
      List.filter (fun (d, s) -> Layout.occupant layout d s = None) (valid_slots layout d))
    (List.init (Topology.device_count topo) Fun.id)

let dist layout (d1 : int) (d2 : int) =
  float_of_int (Topology.distance (Layout.topology layout) d1 d2)

let initial layout =
  let n = Layout.n_logical layout in
  let w = Layout.weights layout in
  let topo = Layout.topology layout in
  let placed = ref [] in
  let unplaced = ref (List.init n Fun.id) in
  (* First qubit: greatest total weight, at the centre-most device. *)
  let total i = Array.fold_left ( +. ) 0. w.(i) in
  let first =
    List.fold_left (fun best i -> if total i > total best then i else best)
      (List.hd !unplaced) !unplaced
  in
  let center = Topology.center topo in
  let first_slot =
    match valid_slots layout center with slot :: _ -> slot | [] -> assert false
  in
  Layout.place layout first first_slot;
  placed := [ first ];
  unplaced := List.filter (( <> ) first) !unplaced;
  while !unplaced <> [] do
    (* Next qubit: greatest weight to the placed set. *)
    let weight_to_placed i = List.fold_left (fun acc j -> acc +. w.(i).(j)) 0. !placed in
    let next =
      List.fold_left
        (fun best i -> if weight_to_placed i > weight_to_placed best then i else best)
        (List.hd !unplaced) !unplaced
    in
    (* Candidates: free slots on devices hosting or adjacent to placed
       qubits; fall back to all free slots. *)
    let placed_devices = List.sort_uniq compare (List.map (Layout.device_of layout) !placed) in
    let near d =
      List.exists (fun pd -> pd = d || Topology.are_adjacent topo pd d) placed_devices
    in
    let all_free = free_slots layout in
    let candidates =
      match List.filter (fun (d, _) -> near d) all_free with [] -> all_free | l -> l
    in
    if candidates = [] then failwith "Mapping.initial: no free slots (topology too small)";
    let cost (d, _s) =
      List.fold_left
        (fun acc j ->
          let dj = Layout.device_of layout j in
          acc +. (w.(next).(j) *. dist layout d dj))
        0. !placed
    in
    let best =
      List.fold_left
        (fun best c -> if cost c < cost best then c else best)
        (List.hd candidates) (List.tl candidates)
    in
    Layout.place layout next best;
    placed := next :: !placed;
    unplaced := List.filter (( <> ) next) !unplaced
  done
