(** SWAP routing with the paper's disruption-cost heuristic (Sec. 5.2).

    Movement is one virtual-slot step at a time; each step strictly reduces
    the mover's device distance to its goal (with a bounded allowance for
    sideways steps around blocked devices), and among the admissible steps
    the one minimizing the weighted disruption
    D(i,j) = Σ_k w(i,k)(d(v,φk) − d(u,φk)) + w(j,k)(d(u,φk) − d(v,φk))
    is chosen. *)

val adjacent_or_same : Layout.t -> int -> int -> bool
(** Device-level adjacency test for two logical qubits. *)

val route_to_adjacency :
  Layout.t -> ?blocked:int list -> ?frozen:int list -> anchor:int -> int -> unit
(** Move [mover] until its device is the same as or adjacent to [anchor]'s.
    [blocked] devices are never entered; [frozen] logical qubits are never
    displaced. Raises [Failure] if no progress is possible. *)

val route_adjacent_to_device :
  Layout.t -> ?blocked:int list -> ?frozen:int list -> device:int -> int -> unit
(** Move a logical qubit until its device equals or neighbours [device]. *)

val route_pair : Layout.t -> ?blocked:int list -> ?frozen:int list -> int -> int -> unit
(** Make two logical qubits device-adjacent (or co-located), moving
    whichever side disrupts the layout least at each step. *)
