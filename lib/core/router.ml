open Waltz_arch

let dist layout d1 d2 = Topology.distance (Layout.topology layout) d1 d2

let adjacent_or_same layout a b =
  let da = Layout.device_of layout a and db = Layout.device_of layout b in
  da = db || Topology.are_adjacent (Layout.topology layout) da db

let candidate_slots layout device =
  match (Layout.strategy layout).Strategy.encoding with
  | Strategy.Bare -> [ (device, 0) ]
  | Strategy.Intermediate -> [ (device, 1) ]
  | Strategy.Packed -> [ (device, 0); (device, 1) ]

(* The paper's disruption cost for exchanging the occupants of u and v,
   where [i] is the moving qubit and [j] the displaced occupant (if any). *)
let disruption layout i j (du : int) (dv : int) =
  if not (Layout.strategy layout).Strategy.disruption_aware_routing then 0.
  else
  let w = Layout.weights layout in
  let n = Layout.n_logical layout in
  let acc = ref 0. in
  for k = 0 to n - 1 do
    if k <> i && Some k <> j && Layout.is_placed layout k then begin
      let dk = Layout.device_of layout k in
      let dvk = float_of_int (dist layout dv dk) and duk = float_of_int (dist layout du dk) in
      acc := !acc +. (w.(i).(k) *. (dvk -. duk));
      match j with
      | Some j -> acc := !acc +. (w.(j).(k) *. (duk -. dvk))
      | None -> ()
    end
  done;
  !acc

let one_step layout ~blocked ~frozen ~mover ~goal_device ~max_delta =
  let du, su = Layout.pos layout mover in
  let d0 = dist layout du goal_device in
  let topo = Layout.topology layout in
  let candidates =
    List.concat_map
      (fun nd ->
        if List.mem nd blocked then []
        else if
          (* In the intermediate regime an encoded pair only exists inside
             the ENC/gate/DEC bracket; routing must not break it apart. *)
          (Layout.strategy layout).Strategy.encoding = Strategy.Intermediate
          && Layout.occupancy layout nd = 2
        then []
        else
          let delta = dist layout nd goal_device - d0 in
          if delta <= max_delta then
            List.filter_map
              (fun (d, s) ->
                match Layout.occupant layout d s with
                | Some q when List.mem q frozen -> None
                | occupant -> Some ((d, s), occupant, delta))
              (candidate_slots layout nd)
          else [])
      (Topology.neighbors topo du)
  in
  match candidates with
  | [] -> None
  | _ ->
    let score ((dv, _), occupant, delta) =
      (* Strictly-closer steps beat sideways ones; then disruption. *)
      (float_of_int delta *. 1000.) +. disruption layout mover occupant du dv
    in
    let best =
      List.fold_left
        (fun acc c -> match acc with Some b when score b <= score c -> acc | _ -> Some c)
        None candidates
    in
    (match best with
    | Some (target, _, _) -> Emit.swap_op layout (du, su) target
    | None -> ());
    Option.map (fun _ -> ()) best

(* Devices the mover may not enter: blocked ones, encoded pairs in the
   intermediate regime, and devices whose every usable slot is frozen. *)
let enterable layout ~blocked ~frozen d =
  (not (List.mem d blocked))
  && (not
        ((Layout.strategy layout).Strategy.encoding = Strategy.Intermediate
        && Layout.occupancy layout d = 2))
  && List.exists
       (fun (d', s) ->
         match Layout.occupant layout d' s with
         | Some q -> not (List.mem q frozen)
         | None -> true)
       (candidate_slots layout d)

(* Shortest path from [src] to any device adjacent to [goal], through
   enterable devices only. Returns the full path excluding [src]. *)
let bfs_path layout ~blocked ~frozen ~src ~goal =
  let topo = Layout.topology layout in
  let n = Topology.device_count topo in
  let prev = Array.make n (-2) in
  prev.(src) <- -1;
  let q = Queue.create () in
  Queue.add src q;
  let found = ref None in
  while !found = None && not (Queue.is_empty q) do
    let u = Queue.pop q in
    if u <> src && Topology.are_adjacent topo u goal then found := Some u
    else
      List.iter
        (fun v ->
          if prev.(v) = -2 && enterable layout ~blocked ~frozen v then begin
            prev.(v) <- u;
            Queue.add v q
          end)
        (Topology.neighbors topo u)
  done;
  match !found with
  | None -> None
  | Some dst ->
    let rec walk acc d = if d = src then acc else walk (d :: acc) prev.(d) in
    Some (walk [] dst)

let route_to_adjacency layout ?(blocked = []) ?(frozen = []) ~anchor mover =
  let frozen = anchor :: frozen in
  while not (adjacent_or_same layout mover anchor) do
    let du, su = Layout.pos layout mover in
    let goal = Layout.device_of layout anchor in
    match bfs_path layout ~blocked ~frozen ~src:du ~goal with
    | None -> failwith "Router.route_to_adjacency: no path (blocked neighbourhood)"
    | Some [] -> assert false
    | Some (next :: _) ->
      (* Pick the slot on [next] that disrupts the layout least. *)
      let slots =
        List.filter
          (fun (d, s) ->
            match Layout.occupant layout d s with
            | Some q -> not (List.mem q frozen)
            | None -> true)
          (candidate_slots layout next)
      in
      let best =
        List.fold_left
          (fun acc (d, s) ->
            let occupant = Layout.occupant layout d s in
            let cost = disruption layout mover occupant du d in
            match acc with
            | Some (_, best_cost) when best_cost <= cost -> acc
            | _ -> Some ((d, s), cost))
          None slots
      in
      (match best with
      | Some (target, _) -> Emit.swap_op layout (du, su) target
      | None -> failwith "Router.route_to_adjacency: no usable slot")
  done

let route_adjacent_to_device layout ?(blocked = []) ?(frozen = []) ~device mover =
  let topo = Layout.topology layout in
  let at_goal () =
    let d = Layout.device_of layout mover in
    d = device || Topology.are_adjacent topo d device
  in
  while not (at_goal ()) do
    let du, su = Layout.pos layout mover in
    match bfs_path layout ~blocked ~frozen ~src:du ~goal:device with
    | None -> failwith "Router.route_adjacent_to_device: no path"
    | Some [] -> assert false
    | Some (next :: _) ->
      let slots =
        List.filter
          (fun (d, s) ->
            match Layout.occupant layout d s with
            | Some q -> not (List.mem q frozen)
            | None -> true)
          (candidate_slots layout next)
      in
      let best =
        List.fold_left
          (fun acc (d, s) ->
            let occupant = Layout.occupant layout d s in
            let cost = disruption layout mover occupant du d in
            match acc with
            | Some (_, best_cost) when best_cost <= cost -> acc
            | _ -> Some ((d, s), cost))
          None slots
      in
      (match best with
      | Some (target, _) -> Emit.swap_op layout (du, su) target
      | None -> failwith "Router.route_adjacent_to_device: no usable slot")
  done

let route_pair layout ?(blocked = []) ?(frozen = []) a b =
  (* Move the endpoint whose single best step disrupts least; recompute each
     iteration. *)
  let budget =
    ref (6 * (dist layout (Layout.device_of layout a) (Layout.device_of layout b) + 2))
  in
  while not (adjacent_or_same layout a b) do
    if !budget <= 0 then failwith "Router.route_pair: step budget exhausted";
    decr budget;
    let try_move ~max_delta mover anchor =
      one_step layout ~blocked ~frozen:(anchor :: frozen) ~mover
        ~goal_device:(Layout.device_of layout anchor) ~max_delta
    in
    let attempts =
      [ (fun () -> try_move ~max_delta:(-1) a b);
        (fun () -> try_move ~max_delta:(-1) b a);
        (fun () -> try_move ~max_delta:0 a b);
        (fun () -> try_move ~max_delta:0 b a);
        (fun () -> try_move ~max_delta:1 a b) ]
    in
    let rec first = function
      | [] -> route_to_adjacency layout ~blocked ~frozen ~anchor:b a
      | f :: rest -> ( match f () with Some () -> () | None -> first rest)
    in
    first attempts
  done
