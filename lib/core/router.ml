open Waltz_arch
module Telemetry = Waltz_telemetry.Telemetry

(* Routing-volume counters for the stats report (see doc/OBSERVABILITY.md):
   SWAP steps taken and shortest-path searches run. *)
let router_steps_cell = Telemetry.Metrics.cell "compile.router_steps"
let bfs_calls_cell = Telemetry.Metrics.cell "compile.bfs_calls"

let dist layout d1 d2 = Topology.distance (Layout.topology layout) d1 d2

let adjacent_or_same layout a b =
  let da = Layout.device_of layout a and db = Layout.device_of layout b in
  da = db || Topology.are_adjacent (Layout.topology layout) da db

(* The slots of [device] the mover may land on, as an iterator (no list
   allocation): slot 0 for bare, slot 1 for intermediate, both for packed. *)
let iter_candidate_slots layout device f =
  match (Layout.strategy layout).Strategy.encoding with
  | Strategy.Bare -> f device 0
  | Strategy.Intermediate -> f device 1
  | Strategy.Packed ->
    f device 0;
    f device 1

(* Blocked/frozen membership via the layout's epoch-stamped scratch:
   [begin_masks] stamps the lists once per routing call, then each test is
   one array read instead of a [List.mem] walk per candidate. *)
let begin_masks layout ~blocked ~frozen =
  let sc = Layout.scratch layout in
  sc.Layout.mask_epoch <- sc.Layout.mask_epoch + 1;
  let e = sc.Layout.mask_epoch in
  List.iter (fun d -> sc.Layout.blocked_stamp.(d) <- e) blocked;
  List.iter (fun q -> sc.Layout.frozen_stamp.(q) <- e) frozen;
  sc

let blocked_device (sc : Layout.scratch) d = sc.Layout.blocked_stamp.(d) = sc.Layout.mask_epoch
let frozen_qubit (sc : Layout.scratch) q = sc.Layout.frozen_stamp.(q) = sc.Layout.mask_epoch

(* The paper's disruption cost for exchanging the occupants of u and v,
   where [i] is the moving qubit and [j] the displaced occupant (if any).
   The loop body — in particular the order of the float additions — must
   stay exactly as written: the interaction weights are not all
   representable (2/3, 0.25), so re-associating the sum would change
   tie-breaking between equal-cost candidates and hence the emitted
   program. The speedup comes from the inputs instead: the incrementally
   maintained [Layout.device_index] aggregate and hoisted distance-table
   rows replace an option unpack and two bounds-checked 2D lookups per
   neighbour. *)
let disruption layout i j (du : int) (dv : int) =
  if not (Layout.strategy layout).Strategy.disruption_aware_routing then 0.
  else begin
    let w = Layout.weights layout in
    let n = Layout.n_logical layout in
    let topo = Layout.topology layout in
    let didx = Layout.device_index layout in
    let row_u = Topology.dist_row topo du and row_v = Topology.dist_row topo dv in
    let wi = w.(i) in
    let ji, wj = match j with Some j -> (j, w.(j)) | None -> (-1, wi) in
    let acc = ref 0. in
    for k = 0 to n - 1 do
      if k <> i && k <> ji then begin
        let dk = didx.(k) in
        if dk >= 0 then begin
          let dvk = float_of_int row_v.(dk) and duk = float_of_int row_u.(dk) in
          acc := !acc +. (wi.(k) *. (dvk -. duk));
          if ji >= 0 then acc := !acc +. (wj.(k) *. (duk -. dvk))
        end
      end
    done;
    !acc
  end

let one_step layout ~blocked ~frozen ~mover ~goal_device ~max_delta =
  let du, su = Layout.pos layout mover in
  let topo = Layout.topology layout in
  let goal_row = Topology.dist_row topo goal_device in
  let d0 = goal_row.(du) in
  let sc = begin_masks layout ~blocked ~frozen in
  let intermediate = (Layout.strategy layout).Strategy.encoding = Strategy.Intermediate in
  (* Enumerate candidates in the same neighbour/slot order as before, but
     score each exactly once: the old fold re-ran the incumbent's O(n)
     disruption on every comparison. Ties keep the earlier candidate. *)
  let have = ref false in
  let best_d = ref (-1) and best_s = ref (-1) and best_score = ref 0. in
  List.iter
    (fun nd ->
      if
        (not (blocked_device sc nd))
        (* In the intermediate regime an encoded pair only exists inside
           the ENC/gate/DEC bracket; routing must not break it apart. *)
        && not (intermediate && Layout.occupancy layout nd = 2)
      then begin
        let delta = goal_row.(nd) - d0 in
        if delta <= max_delta then
          iter_candidate_slots layout nd (fun d s ->
              match Layout.occupant layout d s with
              | Some q when frozen_qubit sc q -> ()
              | occupant ->
                (* Strictly-closer steps beat sideways ones; then disruption. *)
                let score =
                  (float_of_int delta *. 1000.) +. disruption layout mover occupant du d
                in
                if (not !have) || not (!best_score <= score) then begin
                  have := true;
                  best_d := d;
                  best_s := s;
                  best_score := score
                end)
      end)
    (Topology.neighbors topo du);
  if !have then begin
    Telemetry.Metrics.cell_incr router_steps_cell;
    Emit.swap_op layout (du, su) (!best_d, !best_s);
    Some ()
  end
  else None

(* Devices the mover may not enter: blocked ones, encoded pairs in the
   intermediate regime, and devices whose every usable slot is frozen. *)
let enterable layout sc d =
  (not (blocked_device sc d))
  && (not
        ((Layout.strategy layout).Strategy.encoding = Strategy.Intermediate
        && Layout.occupancy layout d = 2))
  &&
  let usable s =
    match Layout.occupant layout d s with
    | Some q -> not (frozen_qubit sc q)
    | None -> true
  in
  (match (Layout.strategy layout).Strategy.encoding with
  | Strategy.Bare -> usable 0
  | Strategy.Intermediate -> usable 1
  | Strategy.Packed -> usable 0 || usable 1)

(* First step of the shortest path from [src] to any device adjacent to
   [goal], through enterable devices only (the callers never need the rest
   of the path). Masks must already be stamped via [begin_masks]; BFS state
   comes from the layout's scratch, so nothing is allocated per call. *)
let bfs_next layout sc ~src ~goal =
  Telemetry.Metrics.cell_incr bfs_calls_cell;
  let topo = Layout.topology layout in
  sc.Layout.bfs_epoch <- sc.Layout.bfs_epoch + 1;
  let e = sc.Layout.bfs_epoch in
  let seen = sc.Layout.bfs_seen and prev = sc.Layout.bfs_prev and queue = sc.Layout.bfs_queue in
  let goal_row = Topology.dist_row topo goal in
  seen.(src) <- e;
  prev.(src) <- -1;
  queue.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  let found = ref (-1) in
  while !found < 0 && !head < !tail do
    let u = queue.(!head) in
    incr head;
    if u <> src && goal_row.(u) = 1 then found := u
    else
      List.iter
        (fun v ->
          if seen.(v) <> e && enterable layout sc v then begin
            seen.(v) <- e;
            prev.(v) <- u;
            queue.(!tail) <- v;
            incr tail
          end)
        (Topology.neighbors topo u)
  done;
  if !found < 0 then None
  else begin
    let d = ref !found in
    while prev.(!d) <> src do
      d := prev.(!d)
    done;
    Some !d
  end

(* Pick the slot on [next] that disrupts the layout least (slot order and
   tie-breaking as the candidate list had them), and step onto it. *)
let step_onto layout sc ~mover ~du ~su next ~or_fail =
  let have = ref false in
  let best_s = ref (-1) and best_cost = ref 0. in
  iter_candidate_slots layout next (fun d s ->
      match Layout.occupant layout d s with
      | Some q when frozen_qubit sc q -> ()
      | occupant ->
        let cost = disruption layout mover occupant du d in
        if (not !have) || not (!best_cost <= cost) then begin
          have := true;
          best_s := s;
          best_cost := cost
        end);
  if !have then begin
    Telemetry.Metrics.cell_incr router_steps_cell;
    Emit.swap_op layout (du, su) (next, !best_s)
  end
  else failwith or_fail

let route_to_adjacency layout ?(blocked = []) ?(frozen = []) ~anchor mover =
  let frozen = anchor :: frozen in
  let sc = begin_masks layout ~blocked ~frozen in
  while not (adjacent_or_same layout mover anchor) do
    let du, su = Layout.pos layout mover in
    let goal = Layout.device_of layout anchor in
    match bfs_next layout sc ~src:du ~goal with
    | None -> failwith "Router.route_to_adjacency: no path (blocked neighbourhood)"
    | Some next ->
      step_onto layout sc ~mover ~du ~su next
        ~or_fail:"Router.route_to_adjacency: no usable slot"
  done

let route_adjacent_to_device layout ?(blocked = []) ?(frozen = []) ~device mover =
  let topo = Layout.topology layout in
  let sc = begin_masks layout ~blocked ~frozen in
  let at_goal () =
    let d = Layout.device_of layout mover in
    d = device || Topology.are_adjacent topo d device
  in
  while not (at_goal ()) do
    let du, su = Layout.pos layout mover in
    match bfs_next layout sc ~src:du ~goal:device with
    | None -> failwith "Router.route_adjacent_to_device: no path"
    | Some next ->
      step_onto layout sc ~mover ~du ~su next
        ~or_fail:"Router.route_adjacent_to_device: no usable slot"
  done

let route_pair layout ?(blocked = []) ?(frozen = []) a b =
  (* Move the endpoint whose single best step disrupts least; recompute each
     iteration. *)
  let budget =
    ref (6 * (dist layout (Layout.device_of layout a) (Layout.device_of layout b) + 2))
  in
  while not (adjacent_or_same layout a b) do
    if !budget <= 0 then failwith "Router.route_pair: step budget exhausted";
    decr budget;
    let try_move ~max_delta mover anchor =
      one_step layout ~blocked ~frozen:(anchor :: frozen) ~mover
        ~goal_device:(Layout.device_of layout anchor) ~max_delta
    in
    let attempts =
      [ (fun () -> try_move ~max_delta:(-1) a b);
        (fun () -> try_move ~max_delta:(-1) b a);
        (fun () -> try_move ~max_delta:0 a b);
        (fun () -> try_move ~max_delta:0 b a);
        (fun () -> try_move ~max_delta:1 a b) ]
    in
    let rec first = function
      | [] -> route_to_adjacency layout ~blocked ~frozen ~anchor:b a
      | f :: rest -> ( match f () with Some () -> () | None -> first rest)
    in
    first attempts
  done
