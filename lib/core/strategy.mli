(** Compilation strategy configurations (Sec. 5.1).

    A strategy combines an encoding mode (where qubits live), a three-qubit
    gate mode (how CCX/CCZ execute) and a CSWAP mode (Sec. 7.1). The named
    values below are the configurations evaluated in the paper's figures. *)

type encoding_mode =
  | Bare  (** qubit-only hardware: one qubit per 2-level device *)
  | Intermediate
      (** lone qubits on 4-level devices; ENC/DEC around each 3-qubit gate *)
  | Packed  (** full-ququart: two qubits per device throughout *)

type three_q_mode =
  | Decompose_to_cx
      (** rewrite three-qubit gates to 1q + CX (target-independent CCZ-based
          decomposition, 6 CX before routing — the paper's qubit-only
          baseline of ≈8 two-qubit gates after routing) *)
  | IToffoli  (** direct three-device iToffoli pulse + CS† correction (Fig. 6d) *)
  | Direct_ccx  (** native CCX pulse in whatever configuration routing yields *)
  | Retarget_ccx
      (** native CCX with Hadamard retargeting into the controls-together
          configuration (Fig. 6b) *)
  | Via_ccz  (** transform CCX to the target-independent CCZ (Fig. 6c) *)

type cswap_mode =
  | Cswap_decompose  (** CSWAP → CX; CCX; CX, then the CCX follows [three_q] *)
  | Cswap_direct  (** native CSWAP pulse, orientation left to routing *)
  | Cswap_oriented
      (** native CSWAP pulse, choreographed so both targets share a ququart *)

type t = {
  name : string;
  encoding : encoding_mode;
  three_q : three_q_mode;
  cswap : cswap_mode;
  disruption_aware_routing : bool;
      (** use the weighted disruption cost when picking SWAPs (Sec. 5.2);
          when false the router takes the first distance-reducing step —
          an ablation knob, on for every named strategy *)
  choreograph_slots : bool;
      (** choose ENC slot assignments and encode-pair roles to hit the
          cheapest pulse configuration (Sec. 5.1.2); ablation knob *)
}

val qubit_only : t
(** Black line of Fig. 7/9: decompose everything to one- and two-qubit
    gates. *)

val qubit_itoffoli : t
(** Red line: qubit-only with the direct iToffoli pulse. *)

val mixed_radix_basic : t
(** Pink line: intermediate encoding, CCX in routed configuration. *)

val mixed_radix_retarget : t
(** Light-blue line: intermediate encoding with Hadamard-corrected CCX. *)

val mixed_radix_ccz : t
(** Green line: intermediate encoding via CCZ. *)

val full_ququart : t
(** Grey line: packed encoding via CCZ. *)

val mixed_radix_cswap : t
(** Fig. 9a: intermediate encoding with direct, favourably oriented
    CSWAPs. *)

val full_ququart_cswap : t
(** Fig. 9a "basic": packed with direct CSWAPs, no orientation effort. *)

val full_ququart_cswap_oriented : t
(** Fig. 9a "targets together": packed with orientation-aware CSWAPs. *)

val fig7_set : t list
(** The six strategies compared in Fig. 7, qubit-only first. *)

val ablate : ?disruption:bool -> ?choreography:bool -> t -> t
(** Returns a copy with the given ablation switches (name annotated). *)

val uses_ququarts : t -> bool

val pp : Format.formatter -> t -> unit
