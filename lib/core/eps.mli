(** Expected-probability-of-success estimators (Sec. 6.3): analytic fidelity
    proxies that need no state-vector simulation, so they scale to the
    paper's full 5–21 qubit range (Fig. 8). *)

type breakdown = {
  gate_eps : float;  (** product of per-pulse success probabilities *)
  coherence_eps : float;
      (** product over devices of exp(−t/T1(k)) over occupancy segments,
          where k is the highest occupied level (|1⟩ lone, |3⟩ encoded) *)
  total_eps : float;  (** product of the two *)
  duration_ns : float;
}

val estimate : ?model:Waltz_noise.Noise.model -> Physical.t -> breakdown
(** The model's [ww_error_scale] multiplies the error of ququart-touching
    pulses and [t1_high_scale] shortens the T1 of levels ≥ 2, mirroring the
    Fig. 9b/9c sensitivity knobs. *)

type label_report = {
  op_label : string;
  count : int;
  total_ns : float;  (** summed pulse time under this label *)
  error_budget : float;  (** summed per-pulse error probability 1 − success *)
}

val label_breakdown : ?model:Waltz_noise.Noise.model -> Physical.t -> label_report list
(** Per-op-label cost accounting — the Qompress-style communication-vs-gate
    split: SWAP labels are routing overhead, ENC/ENCdg are encode-decode
    choreography, the rest are logical pulses. Sorted by total pulse time
    (descending, then label). *)

type device_report = {
  device : int;
  busy_ns : float;  (** time under pulses *)
  idle_ns : float;  (** exact accumulated idle *)
  encoded_ns : float;  (** time holding two qubits (levels up to |3⟩) *)
  survival : float;  (** this device's coherence EPS factor *)
}

val device_breakdown : ?model:Waltz_noise.Noise.model -> Physical.t -> device_report list
(** Per-device timeline decomposition of the coherence EPS — the tooling
    view behind Fig. 8's middle panel. Devices ordered by index. *)
