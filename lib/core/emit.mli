(** Constructors for physical ops: each function selects the calibration
    entry for the current occupancy pattern, builds the logical unitary over
    the touched virtual wires, updates the layout, and appends the op. *)

open Waltz_circuit

val enc_gate : incoming_slot:int -> Waltz_linalg.Mat.t
(** The ENC permutation over the three touched virtual wires (source slot 1,
    destination slots 0 and 1); exposed for consistency tests against
    [Waltz_qudit.Encoding.enc]. *)

val swap_op : Layout.t -> int * int -> int * int -> unit
(** Exchange two virtual slots: internal SWAP (same device), bare-qubit
    SWAP₂, mixed-radix SWAP^{qs} or full-ququart SWAP^{ss'} depending on
    occupancies. Devices must be identical or adjacent. *)

val enc_op : Layout.t -> src:int -> dst:int -> incoming_slot:int -> unit
(** ENC: the lone qubit of [src] moves into [incoming_slot] of [dst] (whose
    lone occupant fills the other slot). Devices must be adjacent and each
    hold exactly one qubit. *)

val dec_op : Layout.t -> ququart:int -> outgoing_slot:int -> dst:int -> unit
(** ENC†: the qubit in [outgoing_slot] of [ququart] moves to the empty
    [dst]; the remaining encoded qubit drops back to slot 1. *)

val one_qubit_op : Layout.t -> Gate.kind -> int -> unit
(** Single-qubit gate on a logical qubit at its current location: 35 ns
    bare pulse for lone qubits, U⁰/U¹ for encoded ones. *)

val two_qubit_op : Layout.t -> Gate.kind -> int -> int -> unit
(** Two-qubit gate (CX/CZ/SWAP/CSdg) between co-located or
    adjacent-device logical qubits. *)

val three_qubit_pulse :
  Layout.t ->
  label:string ->
  entry:Waltz_qudit.Calibration.entry ->
  kind:Gate.kind ->
  operands:int list ->
  unit
(** A native multi-qubit pulse on (at most) two devices — three-qubit
    mixed-radix / full-ququart configurations, and the four-qubit CCCZ
    extension; the configuration is chosen by the caller via [entry]. *)

val itoffoli_op : Layout.t -> int -> int -> int -> unit
(** The three-device iToffoli pulse on (control, control, target) — devices
    must form a connected triple with the target in the middle. *)
