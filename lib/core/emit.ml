open Waltz_linalg
open Waltz_qudit
open Waltz_circuit
open Waltz_arch

let check_adjacent layout d1 d2 =
  if d1 <> d2 && not (Topology.are_adjacent (Layout.topology layout) d1 d2) then
    invalid_arg (Printf.sprintf "Emit: devices %d and %d are not adjacent" d1 d2)

let is_encoded layout d = Layout.occupancy layout d = 2

let swap_op layout ((d1, s1) as p1) ((d2, s2) as p2) =
  check_adjacent layout d1 d2;
  let bare = Layout.device_dim layout = 2 in
  let entry, label, ww =
    if d1 = d2 then (Calibration.internal_swap, "SWAP^in", true)
    else if bare then (Calibration.qubit_swap, "SWAP_2", false)
    else
      match (is_encoded layout d1, is_encoded layout d2) with
      | true, true ->
        let e = Calibration.fq_swap ~slot_a:s1 ~slot_b:s2 in
        (e, e.Calibration.label, true)
      | true, false ->
        let e = Calibration.mr_swap ~slot:s1 in
        (e, e.Calibration.label, true)
      | false, true ->
        let e = Calibration.mr_swap ~slot:s2 in
        (e, e.Calibration.label, true)
      | false, false -> (Calibration.qubit_swap, "SWAP_2", false)
  in
  let occ d gaining losing =
    let occ = Layout.occupancy layout d in
    if gaining && not losing then occ + 1 else if losing && not gaining then occ - 1 else occ
  in
  let occupied (d, s) = Layout.occupant layout d s <> None in
  let parts =
    if d1 = d2 then [ Layout.part layout d1 ]
    else begin
      let o1 = occupied p1 and o2 = occupied p2 in
      [ Layout.part layout ~occ_after:(occ d1 o2 o1) d1;
        Layout.part layout ~occ_after:(occ d2 o1 o2) d2 ]
    end
  in
  let op =
    Physical.make_op ~label ~parts ~targets:[ p1; p2 ] ~gate:Gates.swap ~entry ~touches_ww:ww
  in
  Layout.swap_occupants layout p1 p2;
  Layout.emit layout op

(* ENC as a permutation of the three touched virtual wires
   (src slot 1, dst slot 0, dst slot 1) — see Waltz_qudit.Encoding. The two
   8x8 permutations (and their adjoints for DEC) are built once at module
   init: rebuilding them per emitted ENC/DEC dominated the choreograph
   phase before they were hoisted. *)
let enc_gate_slot0 = Embed.on_qubits ~n:3 ~targets:[ 0; 1 ] Gates.swap

let enc_gate_slot1 =
  Mat.permutation 8 (fun idx ->
      let a = (idx lsr 2) land 1 and b = (idx lsr 1) land 1 and c = idx land 1 in
      (b lsl 2) lor (c lsl 1) lor a)

let dec_gate_slot0 = Mat.adjoint enc_gate_slot0
let dec_gate_slot1 = Mat.adjoint enc_gate_slot1

let enc_gate ~incoming_slot =
  match incoming_slot with
  | 0 -> enc_gate_slot0
  | 1 -> enc_gate_slot1
  | _ -> invalid_arg "Emit.enc_gate"

let dec_gate ~outgoing_slot =
  match outgoing_slot with
  | 0 -> dec_gate_slot0
  | 1 -> dec_gate_slot1
  | _ -> invalid_arg "Emit.dec_gate"

let enc_op layout ~src ~dst ~incoming_slot =
  check_adjacent layout src dst;
  if Layout.occupancy layout src <> 1 || Layout.occupancy layout dst <> 1 then
    invalid_arg "Emit.enc_op: both devices must hold exactly one qubit";
  let q_in =
    match Layout.occupant layout src 1 with
    | Some q -> q
    | None -> invalid_arg "Emit.enc_op: source qubit must sit at slot 1"
  in
  let occupant =
    match Layout.occupant layout dst 1 with
    | Some q -> q
    | None -> invalid_arg "Emit.enc_op: destination occupant must sit at slot 1"
  in
  let parts =
    [ Layout.part layout ~occ_after:0 src; Layout.part layout ~occ_after:2 dst ]
  in
  let op =
    Physical.make_op ~label:"ENC"
      ~parts
      ~targets:[ (src, 1); (dst, 0); (dst, 1) ]
      ~gate:(enc_gate ~incoming_slot) ~entry:Calibration.enc ~touches_ww:true
  in
  (* Update the layout to match the permutation. *)
  (match incoming_slot with
  | 0 -> Layout.move layout q_in (dst, 0)
  | 1 ->
    Layout.move layout occupant (dst, 0);
    Layout.move layout q_in (dst, 1)
  | _ -> invalid_arg "Emit.enc_op");
  Layout.emit layout op

let dec_op layout ~ququart ~outgoing_slot ~dst =
  check_adjacent layout ququart dst;
  if Layout.occupancy layout ququart <> 2 then
    invalid_arg "Emit.dec_op: ququart must hold two qubits";
  if Layout.occupancy layout dst <> 0 then invalid_arg "Emit.dec_op: destination must be empty";
  let q_out =
    match Layout.occupant layout ququart outgoing_slot with
    | Some q -> q
    | None -> assert false
  in
  let parts =
    [ Layout.part layout ~occ_after:1 dst; Layout.part layout ~occ_after:1 ququart ]
  in
  let op =
    Physical.make_op ~label:"ENCdg"
      ~parts
      ~targets:[ (dst, 1); (ququart, 0); (ququart, 1) ]
      ~gate:(dec_gate ~outgoing_slot)
      ~entry:Calibration.enc ~touches_ww:true
  in
  (match outgoing_slot with
  | 0 -> Layout.move layout q_out (dst, 1)
  | 1 ->
    Layout.move layout q_out (dst, 1);
    let stayer =
      match Layout.occupant layout ququart 0 with Some q -> q | None -> assert false
    in
    Layout.move layout stayer (ququart, 1)
  | _ -> invalid_arg "Emit.dec_op");
  Layout.emit layout op

let one_qubit_op layout kind q =
  let ((d, s) as p) = Layout.pos layout q in
  let entry, ww =
    if Layout.device_dim layout = 2 then (Calibration.bare_1q, false)
    else if Layout.occupancy layout d = 1 && s = 1 then (Calibration.bare_1q, false)
    else (Calibration.embedded_1q ~slot:s, true)
  in
  let op =
    Physical.make_op
      ~label:(Gate.name kind ^ if ww then Printf.sprintf "^%d" s else "")
      ~parts:[ Layout.part layout d ]
      ~targets:[ p ] ~gate:(Gate.unitary kind) ~entry ~touches_ww:ww
  in
  Layout.emit layout op

let operand_of layout q =
  let d, s = Layout.pos layout q in
  if Layout.occupancy layout d = 2 then Ququart_gates.Slot s else Ququart_gates.Qubit

let two_qubit_op layout kind a b =
  let ((da, sa) as pa) = Layout.pos layout a and ((db, sb) as pb) = Layout.pos layout b in
  check_adjacent layout da db;
  let bare = Layout.device_dim layout = 2 in
  let entry, label, ww =
    if da = db then begin
      (* Internal single-ququart operation. *)
      let entry =
        match kind with
        | Gate.Swap -> Calibration.internal_swap
        | Gate.Cx | Gate.Cz | Gate.Csdg | _ -> Calibration.internal_cx ~target_slot:sb
      in
      (entry, Printf.sprintf "%s^in" (Gate.name kind), true)
    end
    else if bare then begin
      let entry =
        match kind with
        | Gate.Cx -> Calibration.qubit_cx
        | Gate.Cz -> Calibration.qubit_cz
        | Gate.Swap -> Calibration.qubit_swap
        | Gate.Csdg | _ -> Calibration.qubit_csdg
      in
      (entry, entry.Calibration.label, false)
    end
    else begin
      match (is_encoded layout da, is_encoded layout db) with
      | false, false ->
        let entry =
          match kind with
          | Gate.Cx -> Calibration.qubit_cx
          | Gate.Cz -> Calibration.qubit_cz
          | Gate.Swap -> Calibration.qubit_swap
          | Gate.Csdg | _ -> Calibration.qubit_csdg
        in
        (entry, entry.Calibration.label, false)
      | true, true ->
        let entry =
          match kind with
          | Gate.Cx -> Calibration.fq_cx ~control_slot:sa ~target_slot:sb
          | Gate.Cz -> Calibration.fq_cz ~slot_a:sa ~slot_b:sb
          | Gate.Swap -> Calibration.fq_swap ~slot_a:sa ~slot_b:sb
          | Gate.Csdg | _ -> Calibration.fq_cz ~slot_a:sa ~slot_b:sb
        in
        (entry, entry.Calibration.label, true)
      | _ ->
        let oa = operand_of layout a and ob = operand_of layout b in
        let encoded_slot = if is_encoded layout da then sa else sb in
        let entry =
          match kind with
          | Gate.Cx -> Calibration.mr_cx ~control:oa ~target:ob
          | Gate.Cz -> Calibration.mr_cz ~slot:encoded_slot
          | Gate.Swap -> Calibration.mr_swap ~slot:encoded_slot
          | Gate.Csdg | _ -> Calibration.mr_cz ~slot:encoded_slot
        in
        (entry, entry.Calibration.label, true)
    end
  in
  let parts =
    if da = db then [ Layout.part layout da ]
    else [ Layout.part layout da; Layout.part layout db ]
  in
  let op =
    Physical.make_op ~label ~parts ~targets:[ pa; pb ] ~gate:(Gate.unitary kind) ~entry
      ~touches_ww:ww
  in
  Layout.emit layout op

let three_qubit_pulse layout ~label ~entry ~kind ~operands =
  let targets = List.map (Layout.pos layout) operands in
  let devices = List.sort_uniq compare (List.map fst targets) in
  (match devices with
  | [ _ ] | [ _; _ ] -> ()
  | _ -> invalid_arg "Emit.three_qubit_pulse: operands must span at most two devices");
  (match devices with
  | [ d1; d2 ] -> check_adjacent layout d1 d2
  | _ -> ());
  let parts = List.map (Layout.part layout) devices in
  let op =
    Physical.make_op ~label ~parts ~targets ~gate:(Gate.unitary kind) ~entry ~touches_ww:true
  in
  Layout.emit layout op

let itoffoli_op layout c0 c1 t =
  let pc0 = Layout.pos layout c0 and pc1 = Layout.pos layout c1 and pt = Layout.pos layout t in
  check_adjacent layout (fst pc0) (fst pt);
  check_adjacent layout (fst pc1) (fst pt);
  let parts = List.map (fun (d, _) -> Layout.part layout d) [ pc0; pc1; pt ] in
  let op =
    Physical.make_op ~label:"iToffoli_3" ~parts ~targets:[ pc0; pc1; pt ]
      ~gate:Gates.itoffoli ~entry:Calibration.itoffoli ~touches_ww:false
  in
  Layout.emit layout op
