open Waltz_circuit

let g kind qubits = Gate.make kind qubits

let ccz_to_cx a b c =
  [ g Cx [ b; c ];
    g Tdg [ c ];
    g Cx [ a; c ];
    g T [ c ];
    g Cx [ b; c ];
    g Tdg [ c ];
    g Cx [ a; c ];
    g T [ b ];
    g T [ c ];
    g Cx [ a; b ];
    g T [ a ];
    g Tdg [ b ];
    g Cx [ a; b ] ]

let ccx_to_cx a b t = (g H [ t ] :: ccz_to_cx a b t) @ [ g H [ t ] ]
let cswap_shell _c a b = ([ g Cx [ b; a ] ], [ g Cx [ b; a ] ])

let ccx_via_ccz a b t = [ g H [ t ]; g Ccz [ a; b; t ]; g H [ t ] ]

let cccx_with_dirty_ancilla a b c t ~ancilla =
  [ g Ccx [ a; b; ancilla ];
    g Ccx [ ancilla; c; t ];
    g Ccx [ a; b; ancilla ];
    g Ccx [ ancilla; c; t ] ]

let pre (strategy : Strategy.t) circuit =
  let spare_for operands =
    let rec first k =
      if k >= circuit.Circuit.n then
        invalid_arg "Decompose.pre: four-qubit gates need a spare qubit on this strategy"
      else if List.mem k operands then first (k + 1)
      else k
    in
    first 0
  in
  let rec rewrite (gate : Gate.t) =
    match (gate.Gate.kind, gate.Gate.qubits) with
    | Gate.Cccx, [ a; b; c; t ] -> begin
      match strategy.Strategy.encoding with
      | Strategy.Packed -> [ g H [ t ]; g Cccz [ a; b; c; t ]; g H [ t ] ]
      | Strategy.Bare | Strategy.Intermediate ->
        List.concat_map rewrite
          (cccx_with_dirty_ancilla a b c t ~ancilla:(spare_for gate.Gate.qubits))
    end
    | Gate.Cccz, [ a; b; c; d ] -> begin
      match strategy.Strategy.encoding with
      | Strategy.Packed -> [ gate ]
      | Strategy.Bare | Strategy.Intermediate ->
        List.concat_map rewrite
          ((g H [ d ] :: cccx_with_dirty_ancilla a b c d ~ancilla:(spare_for gate.Gate.qubits))
          @ [ g H [ d ] ])
    end
    | Gate.Ccx, [ a; b; t ] -> begin
      match strategy.Strategy.three_q with
      | Decompose_to_cx -> ccx_to_cx a b t
      | IToffoli | Direct_ccx | Retarget_ccx -> [ gate ]
      | Via_ccz -> ccx_via_ccz a b t
    end
    | Gate.Ccz, [ a; b; c ] -> begin
      match strategy.Strategy.three_q with
      | Decompose_to_cx -> ccz_to_cx a b c
      | IToffoli -> (g H [ c ] :: [ g Ccx [ a; b; c ] ]) @ [ g H [ c ] ]
      | Direct_ccx | Retarget_ccx | Via_ccz -> [ gate ]
    end
    | Gate.Cswap, [ c; a; b ] -> begin
      match strategy.Strategy.cswap with
      | Cswap_direct | Cswap_oriented -> [ gate ]
      | Cswap_decompose ->
        let prefix, suffix = cswap_shell c a b in
        let inner =
          match strategy.Strategy.three_q with
          | Decompose_to_cx -> ccx_to_cx c a b
          | IToffoli | Direct_ccx | Retarget_ccx -> [ g Ccx [ c; a; b ] ]
          | Via_ccz -> ccx_via_ccz c a b
        in
        prefix @ inner @ suffix
    end
    | _ -> [ gate ]
  in
  Circuit.of_gates ~n:circuit.Circuit.n (List.concat_map rewrite circuit.Circuit.gates)
