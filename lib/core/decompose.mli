(** Logical decomposition pre-pass (Fig. 6): rewrites three-qubit gates into
    the form each strategy executes natively. *)

open Waltz_circuit

val ccz_to_cx : int -> int -> int -> Gate.t list
(** Target-independent 6-CX + T-layer decomposition of CCZ(a, b, c). *)

val ccx_to_cx : int -> int -> int -> Gate.t list
(** CCX(a, b, t) = H(t) · CCZ · H(t) with [ccz_to_cx] inside: the paper's
    qubit-only baseline (≈8 two-qubit gates once routing SWAPs land). *)

val cswap_shell : int -> int -> int -> Gate.t list * Gate.t list
(** The CX conjugation of CSWAP(c, a, b) = CX(b,a) · CCX(c,a,b) · CX(b,a):
    returns (prefix, suffix) around the inner CCX. *)

val cccx_with_dirty_ancilla : int -> int -> int -> int -> ancilla:int -> Gate.t list
(** CCCX(a,b,c,t) as four Toffolis through any spare qubit (the standard
    dirty-ancilla ladder): CCX(a,b,x)·CCX(x,c,t)·CCX(a,b,x)·CCX(x,c,t). *)

val pre : Strategy.t -> Circuit.t -> Circuit.t
(** Rewrites the circuit so that every remaining gate is executable by the
    strategy: three-qubit gates are decomposed, transformed to CCZ, or kept
    native according to [Strategy.three_q] and [Strategy.cswap]. *)
